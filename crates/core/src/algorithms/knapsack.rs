//! Knapsack-constrained monotone submodular maximization.
//!
//! The paper's related work lists knapsack constraints \[57\] as the next
//! constraint family beyond cardinality; this module implements the
//! classic practical algorithm: **cost-benefit greedy** (select by
//! marginal-gain-per-cost while the budget allows) combined with the
//! **best single item**, returning the better of the two. Guarantee:
//! `(1 − 1/√e) ≈ 0.393` (Leskovec et al. 2007 / Khuller et al. 1999
//! analysis); the partial-enumeration `(1 − 1/e)` variant costs `O(n⁵)`
//! and is out of practical scope.
//!
//! This makes every BSM substrate usable in budgeted settings (e.g.
//! facility opening costs), and the ablation benches compare it against
//! plain cardinality greedy at equal effective budgets.

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

/// Configuration for [`knapsack_greedy`].
#[derive(Clone, Debug)]
pub struct KnapsackConfig {
    /// Per-item costs (positive).
    pub costs: Vec<f64>,
    /// Total budget `B`.
    pub budget: f64,
}

impl KnapsackConfig {
    /// Uniform unit costs: reduces to cardinality `⌊budget⌋`.
    pub fn uniform(n: usize, budget: f64) -> Self {
        Self {
            costs: vec![1.0; n],
            budget,
        }
    }
}

/// Result of [`knapsack_greedy`].
#[derive(Clone, Debug)]
pub struct KnapsackOutcome {
    /// Chosen items in insertion order.
    pub items: Vec<ItemId>,
    /// Final aggregate value.
    pub value: f64,
    /// Total cost spent.
    pub cost: f64,
    /// Whether the best-singleton arm won over the ratio-greedy arm.
    pub singleton_won: bool,
    /// Oracle calls performed.
    pub oracle_calls: u64,
}

/// Cost-benefit greedy + best singleton for `max h(S)` s.t.
/// `Σ_{v∈S} cost(v) ≤ B`.
///
/// # Panics
/// Panics if costs are non-positive or the length mismatches the ground
/// set.
pub fn knapsack_greedy<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    cfg: &KnapsackConfig,
) -> KnapsackOutcome {
    let n = system.num_items();
    assert_eq!(cfg.costs.len(), n, "cost vector length mismatch");
    assert!(cfg.costs.iter().all(|&c| c > 0.0), "costs must be positive");
    let mut oracle_calls = 0u64;

    // Arm 1: ratio greedy.
    let mut state = SolutionState::new(system);
    let mut spent = 0.0f64;
    loop {
        let mut best: Option<(f64, f64, ItemId)> = None; // (ratio, gain, item)
        for v in 0..n as ItemId {
            if state.contains(v) {
                continue;
            }
            let cost = cfg.costs[v as usize];
            if spent + cost > cfg.budget + 1e-12 {
                continue;
            }
            let gain = state.gain(aggregate, v);
            let ratio = gain / cost;
            let better = match best {
                None => true,
                Some((br, _, _)) => ratio > br + 1e-15,
            };
            if better {
                best = Some((ratio, gain, v));
            }
        }
        match best {
            Some((_, gain, v)) if gain > 1e-15 => {
                spent += cfg.costs[v as usize];
                state.insert(v);
            }
            _ => break,
        }
    }
    oracle_calls += state.oracle_calls();
    let ratio_value = state.value(aggregate);

    // Arm 2: best affordable singleton.
    let mut probe = SolutionState::new(system);
    let mut best_single: Option<(f64, ItemId)> = None;
    for v in 0..n as ItemId {
        if cfg.costs[v as usize] > cfg.budget + 1e-12 {
            continue;
        }
        let gain = probe.gain(aggregate, v);
        let better = match best_single {
            None => true,
            Some((bg, _)) => gain > bg + 1e-15,
        };
        if better {
            best_single = Some((gain, v));
        }
    }
    oracle_calls += probe.oracle_calls();

    match best_single {
        Some((sv, sitem)) if sv > ratio_value => KnapsackOutcome {
            items: vec![sitem],
            value: sv,
            cost: cfg.costs[sitem as usize],
            singleton_won: true,
            oracle_calls,
        },
        _ => KnapsackOutcome {
            items: state.items().to_vec(),
            value: ratio_value,
            cost: spent,
            singleton_won: false,
            oracle_calls,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MeanUtility;
    use crate::algorithms::greedy::{greedy, GreedyConfig};
    use crate::toy;

    #[test]
    fn uniform_costs_reduce_to_cardinality_greedy_value() {
        let sys = toy::random_coverage(25, 75, 3, 0.1, 2);
        let f = MeanUtility::new(sys.num_users());
        let card = greedy(&sys, &f, &GreedyConfig::naive(5));
        let knap = knapsack_greedy(&sys, &f, &KnapsackConfig::uniform(25, 5.0));
        // Same budget in unit costs; ratio greedy = plain greedy here.
        assert!((knap.value - card.value).abs() < 1e-9);
        assert_eq!(knap.items, card.items);
    }

    #[test]
    fn budget_is_respected() {
        let sys = toy::random_coverage(20, 50, 2, 0.2, 3);
        let f = MeanUtility::new(sys.num_users());
        let costs: Vec<f64> = (0..20).map(|i| 1.0 + (i % 4) as f64).collect();
        let cfg = KnapsackConfig {
            costs: costs.clone(),
            budget: 6.0,
        };
        let out = knapsack_greedy(&sys, &f, &cfg);
        let total: f64 = out.items.iter().map(|&v| costs[v as usize]).sum();
        assert!(total <= 6.0 + 1e-9);
        assert!((out.cost - total).abs() < 1e-12);
    }

    #[test]
    fn singleton_arm_beats_ratio_trap() {
        // Classic trap: a cheap item with tiny value makes ratio greedy
        // exhaust budget; one expensive item is far better.
        // Items: v0 covers 1 user at cost 1; v1 covers all 10 users at
        // cost 10; budget 10.
        let sys = toy::MiniCoverage::new(
            vec![vec![0], (0..10u32).collect()],
            vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1],
        );
        let f = MeanUtility::new(10);
        let cfg = KnapsackConfig {
            costs: vec![1.0, 10.0],
            budget: 10.0,
        };
        let out = knapsack_greedy(&sys, &f, &cfg);
        assert!(out.singleton_won);
        assert_eq!(out.items, vec![1]);
        assert!((out.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expensive_items_are_excluded_when_unaffordable() {
        let sys = toy::figure1();
        let f = MeanUtility::new(12);
        let cfg = KnapsackConfig {
            costs: vec![100.0, 1.0, 1.0, 1.0],
            budget: 2.0,
        };
        let out = knapsack_greedy(&sys, &f, &cfg);
        assert!(!out.items.contains(&0));
        assert!(out.cost <= 2.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cost_rejected() {
        let sys = toy::figure1();
        let f = MeanUtility::new(12);
        let cfg = KnapsackConfig {
            costs: vec![0.0, 1.0, 1.0, 1.0],
            budget: 2.0,
        };
        let _ = knapsack_greedy(&sys, &f, &cfg);
    }
}
