//! Multiplicative-weight updates for robust submodular maximization
//! (in the style of Udwani, NeurIPS 2018, and Fu et al., 2021 — the
//! paper's references \[62\] and \[20\]).
//!
//! Saturate's alternative: maintain a weight per group, repeatedly run
//! greedy on the *weighted average* objective
//! `h_w(S) = Σ_i w_i · f_i(S)` (a non-negative combination of monotone
//! submodular functions, hence greedy-friendly), then increase the
//! weights of under-served groups multiplicatively. The returned
//! solution is the per-round solution with the best true maximin value
//! `g` (for `c = o(k/log³k)` the theory supports averaging the rounds
//! into a distribution; for BSM we need a single set, so best-of-rounds
//! is the standard practical choice).
//!
//! Exposed as a drop-in alternative `OPT'_g` estimator and compared
//! against Saturate in the ablation benches.

use crate::aggregate::{Aggregate, MinGroupUtility};
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

use super::greedy::{greedy, GreedyConfig, GreedyVariant};

/// Weighted group-mean aggregate `Σ_i w_i · f_i(S)`.
#[derive(Clone, Debug)]
pub struct WeightedGroups {
    /// `w_i / m_i` per group.
    scale: Vec<f64>,
}

impl WeightedGroups {
    /// Builds from weights `w` and group sizes.
    pub fn new(weights: &[f64], sizes: &[usize]) -> Self {
        assert_eq!(weights.len(), sizes.len());
        Self {
            scale: weights
                .iter()
                .zip(sizes)
                .map(|(&w, &m)| {
                    assert!(w >= 0.0 && m > 0);
                    w / m as f64
                })
                .collect(),
        }
    }
}

impl Aggregate for WeightedGroups {
    fn value(&self, sums: &[f64]) -> f64 {
        sums.iter().zip(&self.scale).map(|(&s, &w)| s * w).sum()
    }

    fn gain(&self, _sums: &[f64], gains: &[f64]) -> f64 {
        gains.iter().zip(&self.scale).map(|(&g, &w)| g * w).sum()
    }
}

/// Configuration for [`mwu_robust`].
#[derive(Clone, Debug)]
pub struct MwuConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Number of MWU rounds `T`.
    pub rounds: usize,
    /// Learning rate `η` (the classic default is `√(ln c / T)`).
    pub eta: Option<f64>,
    /// Greedy variant for the inner maximization.
    pub variant: GreedyVariant,
}

impl MwuConfig {
    /// Defaults: 30 rounds, `η = √(ln c / T)`, lazy greedy.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            rounds: 30,
            eta: None,
            variant: GreedyVariant::Lazy,
        }
    }
}

/// Result of [`mwu_robust`].
#[derive(Clone, Debug)]
pub struct MwuOutcome {
    /// Best-of-rounds solution by true maximin value.
    pub items: Vec<ItemId>,
    /// Its `g` value (a witnessed `OPT'_g` lower bound).
    pub opt_g_estimate: f64,
    /// Final group weights (diagnostics: which groups were hard).
    pub weights: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total oracle calls.
    pub oracle_calls: u64,
}

/// MWU for `max_{|S|≤k} min_i f_i(S)`.
pub fn mwu_robust<S: UtilitySystem>(system: &S, cfg: &MwuConfig) -> MwuOutcome {
    let sizes = system.group_sizes().to_vec();
    let c = sizes.len();
    let g = MinGroupUtility::new(&sizes);
    let t_rounds = cfg.rounds.max(1);
    let eta = cfg
        .eta
        .unwrap_or(((c as f64).ln().max(1e-9) / t_rounds as f64).sqrt());

    let mut weights = vec![1.0 / c as f64; c];
    let mut best_items: Vec<ItemId> = Vec::new();
    let mut best_g = f64::NEG_INFINITY;
    let mut oracle_calls = 0u64;

    // Scale for normalizing group means into [0,1]-ish for the update:
    // use f_i(V) as the per-group ceiling.
    let mut full = SolutionState::new(system);
    for v in 0..system.num_items() as ItemId {
        full.insert(v);
    }
    oracle_calls += full.oracle_calls();
    let ceilings: Vec<f64> = full
        .group_sums()
        .iter()
        .zip(&sizes)
        .map(|(&s, &m)| (s / m as f64).max(1e-12))
        .collect();

    for _ in 0..t_rounds {
        let objective = WeightedGroups::new(&weights, &sizes);
        let run = greedy(
            system,
            &objective,
            &GreedyConfig {
                variant: cfg.variant.clone(),
                ..GreedyConfig::lazy(cfg.k)
            },
        );
        oracle_calls += run.oracle_calls;

        let mut st = SolutionState::new(system);
        st.insert_all(&run.items);
        oracle_calls += st.oracle_calls();
        let g_val = st.value(&g);
        if g_val > best_g {
            best_g = g_val;
            best_items = run.items.clone();
        }

        // Multiplicative update: groups served *well* lose weight.
        let means: Vec<f64> = st
            .group_sums()
            .iter()
            .zip(&sizes)
            .map(|(&s, &m)| s / m as f64)
            .collect();
        let mut norm = 0.0;
        for i in 0..c {
            let served = (means[i] / ceilings[i]).clamp(0.0, 1.0);
            weights[i] *= (-eta * served).exp();
            norm += weights[i];
        }
        for w in weights.iter_mut() {
            *w /= norm;
        }
    }

    MwuOutcome {
        items: best_items,
        opt_g_estimate: best_g.max(0.0),
        weights,
        rounds: t_rounds,
        oracle_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::saturate::{saturate, SaturateConfig};
    use crate::metrics::evaluate;
    use crate::toy;

    #[test]
    fn weighted_groups_aggregate_is_consistent() {
        let agg = WeightedGroups::new(&[0.3, 0.7], &[10, 5]);
        let sums = [4.0, 2.0];
        let gains = [1.0, 1.0];
        let direct = agg.value(&[5.0, 3.0]) - agg.value(&sums);
        assert!((agg.gain(&sums, &gains) - direct).abs() < 1e-12);
    }

    #[test]
    fn mwu_finds_fair_solution_on_figure1() {
        let sys = toy::figure1();
        let out = mwu_robust(&sys, &MwuConfig::new(2));
        // The robust optimum is {v1, v4} with g = 5/9; MWU's best-of-
        // rounds must serve both groups.
        assert!(out.opt_g_estimate > 0.0);
        let e = evaluate(&sys, &out.items);
        assert!((e.g - out.opt_g_estimate).abs() < 1e-12);
    }

    #[test]
    fn mwu_is_competitive_with_saturate() {
        for seed in 1..5u64 {
            let sys = toy::random_coverage(30, 90, 3, 0.08, seed);
            let k = 5;
            let sat = saturate(&sys, &SaturateConfig::new(k).approximate_only());
            let mwu = mwu_robust(&sys, &MwuConfig::new(k));
            assert!(
                mwu.opt_g_estimate + 1e-9 >= 0.6 * sat.opt_g_estimate,
                "seed {seed}: mwu {} vs saturate {}",
                mwu.opt_g_estimate,
                sat.opt_g_estimate
            );
        }
    }

    #[test]
    fn mwu_upweights_starved_groups() {
        // Group 1 (users 4,5) is only covered by item 1, which plain
        // weighted greedy ignores at first: MWU must raise its weight.
        let sys =
            toy::MiniCoverage::new(vec![vec![0, 1, 2, 3], vec![4, 5]], vec![0, 0, 0, 0, 1, 1]);
        let mut cfg = MwuConfig::new(1);
        cfg.rounds = 10;
        let out = mwu_robust(&sys, &cfg);
        // With k = 1, OPT_g = 0 (one item cannot serve both groups); MWU
        // must report a weight shift toward the starved group.
        assert!(out.weights[1] >= out.weights[0] - 1e-9);
    }

    #[test]
    fn mwu_respects_cardinality_and_determinism() {
        let sys = toy::random_coverage(20, 60, 2, 0.15, 7);
        let a = mwu_robust(&sys, &MwuConfig::new(4));
        let b = mwu_robust(&sys, &MwuConfig::new(4));
        assert_eq!(a.items, b.items);
        assert!(a.items.len() <= 4);
    }
}
