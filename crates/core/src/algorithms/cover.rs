//! Greedy submodular cover (Wolsey, 1982).
//!
//! Given a monotone submodular aggregate `h` and a target `t ≤ max h`,
//! grows a solution greedily until `h(S) ≥ t` or a size cap is hit.
//! Wolsey's analysis gives a `1 + ln(max_v h({v})/…)` size blow-up for
//! integral-valued `h`; the paper uses this routine as the first stage of
//! BSM-TSGreedy and inside Saturate's feasibility test.

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

use super::greedy::{greedy_into, GreedyConfig, GreedyVariant};

/// Result of a greedy submodular cover run.
#[derive(Clone, Debug)]
pub struct CoverOutcome {
    /// Chosen items in insertion order.
    pub items: Vec<ItemId>,
    /// Final aggregate value.
    pub value: f64,
    /// Whether the target value was reached within the size cap.
    pub covered: bool,
    /// Oracle calls performed.
    pub oracle_calls: u64,
}

/// Greedily covers `aggregate` up to `target`, adding at most `max_size`
/// items, using the given greedy `variant`.
pub fn submodular_cover<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    target: f64,
    max_size: usize,
    variant: GreedyVariant,
) -> CoverOutcome {
    let mut state = SolutionState::new(system);
    submodular_cover_into(&mut state, aggregate, target, max_size, variant)
}

/// The greedy configuration every cover run uses — one definition, so
/// round-by-round cover steppers (BSM-TSGreedy's stage 1) can never
/// drift from the run-to-completion functions here.
pub(crate) fn cover_config(target: f64, max_size: usize, variant: GreedyVariant) -> GreedyConfig {
    GreedyConfig {
        k: max_size,
        variant,
        stop_at: Some(target),
        stop_slack: 1e-9,
        seed: 0,
    }
}

/// Cover starting from an existing state; `max_size` caps the *total*
/// solution size.
pub fn submodular_cover_into<S: UtilitySystem, A: Aggregate>(
    state: &mut SolutionState<'_, S>,
    aggregate: &A,
    target: f64,
    max_size: usize,
    variant: GreedyVariant,
) -> CoverOutcome {
    let out = greedy_into(state, aggregate, &cover_config(target, max_size, variant));
    CoverOutcome {
        covered: out.reached_target,
        items: out.items,
        value: out.value,
        oracle_calls: out.oracle_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::TruncatedMean;
    use crate::toy;

    #[test]
    fn cover_reaches_feasible_target() {
        let sys = toy::figure1();
        // g'_τ with τ·OPT'_g = 0.3: v3 alone covers both groups at ≥ 0.3?
        // f_1({v3}) = 2/9 < 0.3, so at least two items are needed.
        let agg = TruncatedMean::uniform(sys.group_sizes(), 0.3);
        let out = submodular_cover(&sys, &agg, 1.0, 4, GreedyVariant::Lazy);
        assert!(out.covered);
        assert!(out.value + 1e-9 >= 1.0);
    }

    #[test]
    fn cover_reports_failure_when_cap_too_small() {
        let sys = toy::figure1();
        // Threshold higher than any single item can achieve for group 1.
        let agg = TruncatedMean::uniform(sys.group_sizes(), 0.9);
        let out = submodular_cover(&sys, &agg, 1.0, 1, GreedyVariant::Lazy);
        assert!(!out.covered);
        assert_eq!(out.items.len(), 1);
    }
}
