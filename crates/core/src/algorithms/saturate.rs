//! Saturate for robust submodular maximization (Krause et al., JMLR 2008).
//!
//! Maximizes `g(S) = min_i f_i(S)` under a cardinality constraint by
//! bisecting on a target level `t` and testing feasibility with greedy
//! submodular cover on the truncated objective
//! `ḡ_t(S) = (1/c) Σ_i min{1, f_i(S)/t}`: level `t` is deemed feasible iff
//! greedy cover reaches `ḡ_t(S) = 1` within `⌈β·k⌉` items. With `β = 1`
//! this is the size-`k` heuristic the paper benchmarks; with
//! `β = 1 + ln(c·m)`-style blow-ups it recovers the bicriteria guarantee
//! of the original paper.
//!
//! Two robustness refinements over the textbook loop:
//!
//! 1. **Witness tightening** — a feasible probe at level `t` yields a set
//!    whose true `g` value may exceed `t`; the lower bound jumps to the
//!    witnessed value instead of `t`.
//! 2. **Exact path on tiny instances** — with the `β = 1` budget, greedy
//!    cover feasibility is not monotone in `t` (on the paper's Figure-1
//!    instance the only feasible probe ≥ 0.5 is the single point
//!    `t = 5/9`), so bisection can under-estimate `OPT_g` on adversarially
//!    small instances. When `C(n,k)` is below a configurable threshold we
//!    therefore enumerate exactly, which also makes the paper's worked
//!    Examples 4.1 and 4.6 reproduce bit-for-bit. Experiment-scale
//!    instances always take the approximate path.
//!
//! The returned `opt_g_estimate` is `g(S_g)` of the returned solution — a
//! *witnessed* lower bound on `OPT_g`, which guarantees `g'_τ(S_g) = 1`
//! in BSM-TSGreedy's fallback (Alg. 1, lines 8–9 of the paper).

use crate::aggregate::{MinGroupUtility, TruncatedMean};
use crate::items::{binomial, for_each_subset, ItemId};
use crate::system::{SolutionState, UtilitySystem};

use super::greedy::{greedy, GreedyConfig, GreedyVariant};

/// Configuration for [`saturate`].
#[derive(Clone, Debug)]
pub struct SaturateConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Budget blow-up `β ≥ 1`: the cover stage may use up to `⌈β·k⌉`
    /// items. The paper's experiments use `β = 1`.
    pub budget_factor: f64,
    /// Relative bisection tolerance on the level `t`.
    pub tolerance: f64,
    /// Hard cap on bisection rounds.
    pub max_rounds: usize,
    /// Greedy evaluation strategy for the cover stage.
    pub variant: GreedyVariant,
    /// Enumerate exactly when `C(n,k)` does not exceed this many subsets
    /// (0 disables the exact path).
    pub exact_subset_limit: f64,
}

impl SaturateConfig {
    /// Paper defaults: size-`k` solutions, lazy-forward, 1e-3 tolerance,
    /// exact enumeration below 20,000 subsets.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            budget_factor: 1.0,
            tolerance: 1e-3,
            max_rounds: 60,
            variant: GreedyVariant::Lazy,
            exact_subset_limit: 20_000.0,
        }
    }

    /// Disables the exact tiny-instance path (pure Saturate).
    pub fn approximate_only(mut self) -> Self {
        self.exact_subset_limit = 0.0;
        self
    }
}

/// Result of a [`saturate`] run.
#[derive(Clone, Debug)]
pub struct SaturateOutcome {
    /// Best solution `S_g` found (size ≤ ⌈β·k⌉; exactly optimal when the
    /// exact path was taken).
    pub items: Vec<ItemId>,
    /// `g(S_g)` — the witnessed estimate `OPT'_g`.
    pub opt_g_estimate: f64,
    /// Number of bisection rounds performed (0 on the exact path).
    pub rounds: usize,
    /// Whether the exact enumeration path was taken.
    pub exact: bool,
    /// Total oracle calls across all cover runs.
    pub oracle_calls: u64,
}

/// Runs Saturate on `system` for the maximin objective over its groups.
///
/// Thin driver over [`SaturateStepper`]: steps the bisection state
/// machine to completion, so one-shot calls and resumable sessions run
/// the exact same code and produce bit-identical outcomes.
pub fn saturate<S: UtilitySystem>(system: &S, cfg: &SaturateConfig) -> SaturateOutcome {
    let mut stepper = SaturateStepper::new(system, cfg);
    while stepper.step(system) {}
    stepper.into_outcome()
}

enum SaturatePhase {
    /// Tiny instance: one exhaustive enumeration step.
    Exact,
    /// Compute the bisection upper bound `g(V)`.
    Bound,
    /// One feasibility probe per step.
    Bisect,
    /// Finished; the outcome is ready.
    Done,
}

/// Saturate as a resumable state machine: one bisection round per
/// [`SaturateStepper::step`].
///
/// The phases mirror the historical run-to-completion loop exactly —
/// upper-bound computation, feasibility probes with witness tightening,
/// and the best-effort fallback cover when no probe succeeded — cut at
/// the probe boundary, so stepping to completion is bit-identical to
/// [`saturate`] (which is itself implemented over this stepper). Every
/// `step` call must receive the same `system` the stepper was created
/// with.
pub struct SaturateStepper {
    cfg: SaturateConfig,
    sizes: Vec<usize>,
    k: usize,
    lo: f64,
    hi: f64,
    rounds: usize,
    best: Option<(Vec<ItemId>, f64)>,
    best_sums: Vec<f64>,
    oracle_calls: u64,
    phase: SaturatePhase,
    outcome: Option<SaturateOutcome>,
}

impl SaturateStepper {
    /// Prepares a run of `cfg` on `system` (no oracle work yet).
    pub fn new<S: UtilitySystem>(system: &S, cfg: &SaturateConfig) -> Self {
        let n = system.num_items();
        let k = cfg.k.min(n);
        let exact = cfg.exact_subset_limit > 0.0 && binomial(n, k) <= cfg.exact_subset_limit;
        Self {
            cfg: cfg.clone(),
            sizes: system.group_sizes().to_vec(),
            k,
            lo: 0.0,
            hi: 0.0,
            rounds: 0,
            best: None,
            best_sums: Vec::new(),
            oracle_calls: 0,
            phase: if exact {
                SaturatePhase::Exact
            } else {
                SaturatePhase::Bound
            },
            outcome: None,
        }
    }

    /// Whether the run has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, SaturatePhase::Done)
    }

    /// Bisection rounds performed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Current bisection bounds `(lo, hi)` on the level `t`.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Best witness found so far: `(items, g(items))`, if any probe
    /// succeeded yet.
    pub fn best_witness(&self) -> Option<(&[ItemId], f64)> {
        self.best.as_ref().map(|(items, v)| (items.as_slice(), *v))
    }

    /// Per-group utility sums of the best witness (empty before the
    /// first feasible probe).
    pub fn best_witness_sums(&self) -> &[f64] {
        &self.best_sums
    }

    /// Oracle calls performed so far.
    pub fn oracle_calls(&self) -> u64 {
        self.oracle_calls
    }

    /// Performs one unit of work (the exact enumeration, the bound
    /// computation, or one feasibility probe). Returns `true` while more
    /// work remains.
    pub fn step<S: UtilitySystem>(&mut self, system: &S) -> bool {
        match self.phase {
            SaturatePhase::Exact => {
                self.outcome = Some(saturate_exact(system, self.k));
                self.finish_from_outcome();
            }
            SaturatePhase::Bound => {
                // Upper bound for the bisection: g(V) = min_i f_i(V) by
                // monotonicity.
                let g = MinGroupUtility::new(&self.sizes);
                let mut full = SolutionState::new(system);
                for v in 0..system.num_items() as ItemId {
                    full.insert(v);
                }
                self.oracle_calls += full.oracle_calls();
                self.hi = full.value(&g);
                if self.hi <= 0.0 {
                    // Some group can never be served; OPT_g = 0 and any
                    // set is optimal.
                    self.outcome = Some(SaturateOutcome {
                        items: Vec::new(),
                        opt_g_estimate: 0.0,
                        rounds: self.rounds,
                        exact: false,
                        oracle_calls: self.oracle_calls,
                    });
                    self.finish_from_outcome();
                } else {
                    self.phase = SaturatePhase::Bisect;
                }
            }
            SaturatePhase::Bisect => {
                if self.rounds < self.cfg.max_rounds
                    && (self.hi - self.lo) > self.cfg.tolerance * self.hi
                {
                    self.probe(system);
                    if self.hi < self.lo {
                        self.finalize_approx(system);
                    }
                } else {
                    self.finalize_approx(system);
                }
            }
            SaturatePhase::Done => {}
        }
        !self.is_done()
    }

    /// One feasibility probe at the current midpoint level.
    fn probe<S: UtilitySystem>(&mut self, system: &S) {
        let g = MinGroupUtility::new(&self.sizes);
        let budget = ((self.cfg.k as f64) * self.cfg.budget_factor).ceil() as usize;
        self.rounds += 1;
        let t = 0.5 * (self.lo + self.hi);
        let truncated = TruncatedMean::uniform(&self.sizes, t);
        let run = greedy(
            system,
            &truncated,
            &GreedyConfig::cover_with(1.0, budget, self.cfg.variant.clone()),
        );
        self.oracle_calls += run.oracle_calls;
        if run.reached_target {
            // Feasible: the witness's true g value is a certified lower
            // bound (≥ t), so jump straight to it.
            let mut st = SolutionState::new(system);
            st.insert_all(&run.items);
            self.oracle_calls += st.oracle_calls();
            let achieved = st.value(&g);
            if self.best.as_ref().is_none_or(|(_, b)| achieved > *b) {
                self.best_sums = st.group_sums().to_vec();
                self.best = Some((run.items, achieved));
            }
            self.lo = self.lo.max(achieved).max(t);
        } else {
            self.hi = t;
        }
    }

    /// Assembles the approximate-path outcome (running the best-effort
    /// fallback cover when no probe ever succeeded).
    fn finalize_approx<S: UtilitySystem>(&mut self, system: &S) {
        let outcome = match self.best.take() {
            Some((items, value)) => SaturateOutcome {
                items,
                opt_g_estimate: value,
                rounds: self.rounds,
                exact: false,
                oracle_calls: self.oracle_calls,
            },
            None => {
                // Every probed level failed within budget (possible when
                // k is very small and groups need disjoint items). Return
                // the last cover attempt's best-effort set at the lowest
                // useful level.
                let g = MinGroupUtility::new(&self.sizes);
                let budget = ((self.cfg.k as f64) * self.cfg.budget_factor).ceil() as usize;
                let t = (self.cfg.tolerance * self.hi).max(f64::MIN_POSITIVE);
                let truncated = TruncatedMean::uniform(&self.sizes, t);
                let run = greedy(
                    system,
                    &truncated,
                    &GreedyConfig::cover_with(1.0, budget, self.cfg.variant.clone()),
                );
                self.oracle_calls += run.oracle_calls;
                let mut st = SolutionState::new(system);
                st.insert_all(&run.items);
                self.oracle_calls += st.oracle_calls();
                let achieved = st.value(&g);
                self.best_sums = st.group_sums().to_vec();
                SaturateOutcome {
                    items: run.items,
                    opt_g_estimate: achieved,
                    rounds: self.rounds,
                    exact: false,
                    oracle_calls: self.oracle_calls,
                }
            }
        };
        self.outcome = Some(outcome);
        self.finish_from_outcome();
    }

    fn finish_from_outcome(&mut self) {
        let outcome = self.outcome.as_ref().expect("outcome set before finish");
        self.oracle_calls = outcome.oracle_calls;
        self.rounds = outcome.rounds;
        if self.best.is_none() && !outcome.items.is_empty() {
            self.best = Some((outcome.items.clone(), outcome.opt_g_estimate));
        }
        self.phase = SaturatePhase::Done;
    }

    /// The finished outcome (call after stepping to completion).
    ///
    /// # Panics
    /// Panics if the run has not finished.
    pub fn into_outcome(self) -> SaturateOutcome {
        self.outcome.expect("SaturateStepper stepped to completion")
    }

    /// Borrowed view of the finished outcome, if done.
    pub fn outcome(&self) -> Option<&SaturateOutcome> {
        self.outcome.as_ref()
    }
}

/// Exhaustive maximin optimum for tiny instances.
fn saturate_exact<S: UtilitySystem>(system: &S, k: usize) -> SaturateOutcome {
    let g = MinGroupUtility::new(system.group_sizes());
    let mut best_items: Vec<ItemId> = Vec::new();
    let mut best_value = f64::NEG_INFINITY;
    let mut oracle_calls = 0u64;
    for_each_subset(system.num_items(), k, |subset| {
        let mut st = SolutionState::new(system);
        st.insert_all(subset);
        oracle_calls += st.oracle_calls();
        let value = st.value(&g);
        if value > best_value + 1e-15 {
            best_value = value;
            best_items = subset.to_vec();
        }
        true
    });
    SaturateOutcome {
        items: best_items,
        opt_g_estimate: best_value.max(0.0),
        rounds: 0,
        exact: true,
        oracle_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate;
    use crate::toy;

    #[test]
    fn figure1_saturate_finds_v1_v4() {
        // Example 3.1: the robust optimum for k=2 is S14 = {v1, v4} with
        // OPT_g = min{5/9, 2/3} = 5/9. C(4,2)=6, so the exact path runs.
        let sys = toy::figure1();
        let out = saturate(&sys, &SaturateConfig::new(2));
        assert!(out.exact);
        let mut items = out.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 3]);
        assert!((out.opt_g_estimate - 5.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn approximate_path_is_a_valid_lower_bound() {
        let sys = toy::figure1();
        let cfg = SaturateConfig::new(2).approximate_only();
        let out = saturate(&sys, &cfg);
        assert!(!out.exact);
        // The estimate is witnessed: g(items) equals the estimate.
        let achieved = evaluate(&sys, &out.items).g;
        assert!((achieved - out.opt_g_estimate).abs() < 1e-9);
        // And it never exceeds the true optimum 5/9.
        assert!(out.opt_g_estimate <= 5.0 / 9.0 + 1e-9);
    }

    #[test]
    fn saturate_dominates_plain_greedy_on_g() {
        use crate::aggregate::MeanUtility;
        use crate::algorithms::greedy::{greedy, GreedyConfig};
        for seed in 1..5u64 {
            let sys = toy::random_coverage(30, 90, 3, 0.08, seed);
            let k = 5;
            let sat = saturate(&sys, &SaturateConfig::new(k).approximate_only());
            let f = MeanUtility::new(sys.num_users());
            let gre = greedy(&sys, &f, &GreedyConfig::lazy(k));
            let g_sat = evaluate(&sys, &sat.items).g;
            let g_gre = evaluate(&sys, &gre.items).g;
            assert!(
                g_sat + 1e-9 >= g_gre * 0.99,
                "seed {seed}: saturate {g_sat} < greedy {g_gre}"
            );
        }
    }

    #[test]
    fn saturate_with_budget_blowup_weakly_improves() {
        let sys = toy::random_coverage(30, 90, 3, 0.08, 3);
        let k = 4;
        let base = saturate(&sys, &SaturateConfig::new(k).approximate_only());
        let mut cfg = SaturateConfig::new(k).approximate_only();
        cfg.budget_factor = 2.0;
        let blown = saturate(&sys, &cfg);
        assert!(blown.opt_g_estimate + 1e-9 >= base.opt_g_estimate);
        assert!(blown.items.len() <= 2 * k);
    }

    #[test]
    fn saturate_handles_unservable_group() {
        // Group 2 (users 4,5) is never covered: OPT_g = 0.
        let sys = toy::MiniCoverage::new(vec![vec![0, 1], vec![2, 3]], vec![0, 0, 0, 0, 1, 1]);
        let out = saturate(&sys, &SaturateConfig::new(1).approximate_only());
        assert_eq!(out.opt_g_estimate, 0.0);
        let exact = saturate(&sys, &SaturateConfig::new(1));
        assert_eq!(exact.opt_g_estimate, 0.0);
    }

    #[test]
    fn exact_path_matches_brute_force_ordering() {
        let sys = toy::random_coverage(8, 24, 2, 0.3, 5);
        let exact = saturate(&sys, &SaturateConfig::new(3));
        assert!(exact.exact);
        let approx = saturate(&sys, &SaturateConfig::new(3).approximate_only());
        assert!(approx.opt_g_estimate <= exact.opt_g_estimate + 1e-9);
    }
}
