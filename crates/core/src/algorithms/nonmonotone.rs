//! Random Greedy for (possibly non-monotone) submodular maximization
//! (Buchbinder, Feldman, Naor, Schwartz; SODA 2014).
//!
//! The paper's future-work section asks to "generalize BSM to
//! non-monotone … submodular functions"; this module provides the
//! standard cardinality-constrained building block: in each of `k`
//! rounds, compute the `k` largest marginal gains and add one of them
//! *uniformly at random* (skipping rounds whose sampled gain is
//! negative). Guarantees: `(1 − 1/e)` in expectation for monotone
//! functions (matching greedy) and `1/e` for general non-monotone
//! submodular functions.
//!
//! Also ships [`PenalizedSystem`], a wrapper subtracting a modular item
//! cost from a monotone [`UtilitySystem`] — the classic way non-monotone
//! instances arise (utility minus cost, the paper's related work
//! \[30, 51\]).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

/// Configuration for [`random_greedy`].
#[derive(Clone, Debug)]
pub struct RandomGreedyConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Sampling seed.
    pub seed: u64,
}

/// Result of [`random_greedy`].
#[derive(Clone, Debug)]
pub struct RandomGreedyOutcome {
    /// Chosen items in insertion order.
    pub items: Vec<ItemId>,
    /// Final aggregate value.
    pub value: f64,
    /// Oracle calls performed.
    pub oracle_calls: u64,
}

/// Random Greedy: uniform choice among the top-`k` marginal gains each
/// round. Negative sampled gains are skipped (the "dummy element"
/// convention).
pub fn random_greedy<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    cfg: &RandomGreedyConfig,
) -> RandomGreedyOutcome {
    let n = system.num_items();
    let k = cfg.k.min(n);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut state = SolutionState::new(system);

    for _ in 0..k {
        // Top-k marginal gains among the remaining items.
        let remaining: Vec<ItemId> = (0..n as ItemId).filter(|&v| !state.contains(v)).collect();
        let mut scored: Vec<(f64, ItemId)> = remaining
            .into_iter()
            .map(|v| (state.gain(aggregate, v), v))
            .collect();
        if scored.is_empty() {
            break;
        }
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let top = &scored[..k.min(scored.len())];
        let (gain, v) = top[rng.gen_range(0..top.len())];
        if gain > 1e-15 {
            state.insert(v);
        }
        // Negative or zero sampled gain: skip this round (dummy element).
    }

    RandomGreedyOutcome {
        value: state.value(aggregate),
        items: state.items().to_vec(),
        oracle_calls: state.oracle_calls(),
    }
}

/// A monotone utility system minus a modular per-item cost — generally
/// *non-monotone* submodular. The cost of an item is charged to every
/// group proportionally to its size, so per-group sums remain meaningful
/// and `f(S) = f_monotone(S) − Σ_{v∈S} cost(v)/m·m = f_mono − mean cost`.
#[derive(Clone, Debug)]
pub struct PenalizedSystem<S> {
    inner: S,
    /// Per-item cost (in *mean utility* units).
    costs: Vec<f64>,
    group_sizes: Vec<usize>,
}

impl<S: UtilitySystem> PenalizedSystem<S> {
    /// Wraps `inner`, charging `costs[v]` (same scale as a single user's
    /// utility) when item `v` is selected.
    pub fn new(inner: S, costs: Vec<f64>) -> Self {
        assert_eq!(inner.num_items(), costs.len());
        assert!(costs.iter().all(|&c| c >= 0.0));
        let group_sizes = inner.group_sizes().to_vec();
        Self {
            inner,
            costs,
            group_sizes,
        }
    }
}

impl<S: UtilitySystem> UtilitySystem for PenalizedSystem<S> {
    type Inner = S::Inner;

    fn num_items(&self) -> usize {
        self.inner.num_items()
    }

    fn num_users(&self) -> usize {
        self.inner.num_users()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        self.inner.init_inner()
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        self.inner.group_gains(inner, item, out);
        // Charge the modular cost proportionally to group size so the
        // total charge equals costs[item] · m (i.e. −cost on f).
        let cost = self.costs[item as usize];
        for (o, &m_i) in out.iter_mut().zip(&self.group_sizes) {
            *o -= cost * m_i as f64;
        }
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        self.inner.apply(inner, item);
    }

    fn gain_kernel(&self) -> &'static str {
        self.inner.gain_kernel()
    }

    fn approx_bytes(&self) -> usize {
        self.inner.approx_bytes() + self.costs.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MeanUtility;
    use crate::algorithms::greedy::{greedy, GreedyConfig};
    use crate::toy;

    #[test]
    fn random_greedy_matches_greedy_on_easy_monotone_instances() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        let out = random_greedy(&sys, &f, &RandomGreedyConfig { k: 2, seed: 5 });
        // Top-2 gains in round one are v1 (5) and v2 (4); any mix still
        // gives decent coverage.
        assert_eq!(out.items.len(), 2);
        assert!(out.value >= 0.5);
    }

    #[test]
    fn random_greedy_expected_quality_on_monotone() {
        // Average over seeds ≥ 60% of greedy (the bound is 1−1/e in
        // expectation; sampling noise stays well above 0.6 here).
        let sys = toy::random_coverage(30, 90, 3, 0.1, 3);
        let f = MeanUtility::new(sys.num_users());
        let gre = greedy(&sys, &f, &GreedyConfig::lazy(5));
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let out = random_greedy(&sys, &f, &RandomGreedyConfig { k: 5, seed });
            total += out.value;
        }
        let avg = total / runs as f64;
        assert!(
            avg >= 0.6 * gre.value,
            "avg {} vs greedy {}",
            avg,
            gre.value
        );
    }

    #[test]
    fn penalized_system_is_non_monotone() {
        // Item 3 (covers 2 users of 12) with cost 0.5 mean-units is a
        // net loss: f({v1}) > f({v1, v4_penalized}).
        let sys = toy::figure1();
        let mut costs = vec![0.0; 4];
        costs[3] = 0.5;
        let pen = PenalizedSystem::new(sys, costs);
        let f = MeanUtility::new(pen.num_users());
        let mut a = SolutionState::new(&pen);
        a.insert(0);
        let v_small = a.value(&f);
        a.insert(3);
        let v_big = a.value(&f);
        assert!(
            v_big < v_small,
            "adding a costly item must hurt: {v_big} vs {v_small}"
        );
    }

    #[test]
    fn random_greedy_avoids_harmful_items() {
        let sys = toy::figure1();
        let mut costs = vec![0.0; 4];
        costs[3] = 1.0; // v4 strictly harmful
        let pen = PenalizedSystem::new(sys, costs);
        let f = MeanUtility::new(pen.num_users());
        for seed in 0..10 {
            let out = random_greedy(&pen, &f, &RandomGreedyConfig { k: 3, seed });
            assert!(
                !out.items.contains(&3) || out.value >= 0.0,
                "seed {seed} picked a strictly harmful item"
            );
        }
    }

    #[test]
    fn penalized_gains_remain_submodular() {
        let sys = toy::figure1();
        let pen = PenalizedSystem::new(sys, vec![0.1, 0.05, 0.2, 0.15]);
        let mut small = SolutionState::new(&pen);
        let mut big = SolutionState::new(&pen);
        big.insert(0);
        let mut gs = [0.0; 2];
        let mut gb = [0.0; 2];
        for v in 1..4 {
            small.gains_into(v, &mut gs);
            big.gains_into(v, &mut gb);
            for i in 0..2 {
                assert!(gs[i] + 1e-12 >= gb[i]);
            }
        }
    }
}
