//! Trivial baselines: uniform random selection and top-`k` singletons.
//!
//! Not part of the paper's comparison table, but standard sanity anchors
//! for the benchmark harness and useful to demonstrate that the greedy
//! family actually earns its keep.

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::metrics::{evaluate, Evaluation};
use crate::system::{SolutionState, UtilitySystem};

/// Uniformly random size-`k` subset of the ground set.
pub fn random_subset<S: UtilitySystem>(
    system: &S,
    k: usize,
    seed: u64,
) -> (Vec<ItemId>, Evaluation) {
    let n = system.num_items();
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<ItemId> = sample(&mut rng, n, k).iter().map(|i| i as ItemId).collect();
    let eval = evaluate(system, &items);
    (items, eval)
}

/// The `k` items with the largest *singleton* aggregate values
/// (ignores interactions — the classic "top individuals" heuristic).
pub fn top_singletons<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    k: usize,
) -> (Vec<ItemId>, Evaluation) {
    let n = system.num_items();
    let mut state = SolutionState::new(system);
    let mut scored: Vec<(f64, ItemId)> = (0..n as ItemId)
        .map(|v| (state.gain(aggregate, v), v))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    let items: Vec<ItemId> = scored.iter().take(k).map(|&(_, v)| v).collect();
    let eval = evaluate(system, &items);
    (items, eval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MeanUtility;
    use crate::algorithms::greedy::{greedy, GreedyConfig};
    use crate::toy;

    #[test]
    fn random_subset_is_deterministic_per_seed() {
        let sys = toy::random_coverage(30, 60, 2, 0.1, 1);
        let (a, _) = random_subset(&sys, 5, 42);
        let (b, _) = random_subset(&sys, 5, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn greedy_beats_random_and_singletons() {
        let sys = toy::random_coverage(40, 100, 2, 0.08, 3);
        let f = MeanUtility::new(sys.num_users());
        let g = greedy(&sys, &f, &GreedyConfig::lazy(6));
        let (_, rand_eval) = random_subset(&sys, 6, 7);
        let (_, top_eval) = top_singletons(&sys, &f, 6);
        assert!(g.value + 1e-9 >= top_eval.f);
        assert!(g.value + 1e-9 >= rand_eval.f);
    }

    #[test]
    fn top_singletons_orders_by_marginal_value() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        let (items, _) = top_singletons(&sys, &f, 2);
        // Singleton coverages: v1=5, v2=4, v3=3, v4=2.
        assert_eq!(items, vec![0, 1]);
    }
}
