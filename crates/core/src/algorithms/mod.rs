//! Approximation, baseline, and exact algorithms for (bicriteria)
//! submodular maximization.
//!
//! * [`greedy`] — the classic greedy for monotone submodular maximization
//!   (Nemhauser et al., 1978) with naive, lazy-forward (Leskovec et al.,
//!   2007), and stochastic (Mirzasoleiman et al., 2015) evaluation modes.
//! * [`cover`] — greedy submodular cover (Wolsey, 1982).
//! * [`saturate`] — Saturate for robust submodular maximization
//!   (Krause et al., 2008).
//! * [`tsgreedy`] — **BSM-TSGreedy** (Algorithm 1 of the paper).
//! * [`bsm_saturate`] — **BSM-Saturate** (Algorithm 2 of the paper).
//! * [`smsc`] — the SMSC baseline (Ohsaka & Matsuoka, 2021;
//!   two groups only), reconstructed as documented in DESIGN.md §5.
//! * [`baselines`] — random and top-singleton baselines.
//! * [`exact`] — brute force and submodular branch-and-bound
//!   (`BSM-Optimal`).
//!
//! Extensions beyond the paper's core algorithms (related/future work):
//!
//! * [`streaming`] — Sieve-Streaming (Badanidiyuru et al., 2014).
//! * [`mwu`] — multiplicative-weight updates for robust submodular
//!   maximization (Udwani, 2018), an alternative to Saturate.
//! * [`nonmonotone`] — Random Greedy (Buchbinder et al., 2014) and
//!   utility-minus-cost penalized systems.
//! * [`knapsack`] — cost-benefit greedy + best singleton under a budget.
//! * [`distributed`] — two-round GreeDi (Mirzasoleiman et al., 2016).
//! * [`pareto`] — τ-sweep Pareto frontier extraction with hypervolume.
//! * [`local_search`] — pairwise-interchange refinement (optionally
//!   fairness-constrained).
//!
//! Every entry point above is also registered, by name, as a
//! [`crate::engine::Solver`] in [`crate::engine::SolverRegistry`] — the
//! uniform execution boundary the experiment harness, examples, and
//! cross-solver tests drive. Call the free functions directly when you
//! hold a concrete system and want an algorithm's full typed outcome;
//! go through the registry when you are sweeping a scenario grid or
//! need solvers behind one interface.

pub mod baselines;
pub mod bsm_saturate;
pub mod cover;
pub mod distributed;
pub mod exact;
pub mod greedy;
pub mod knapsack;
pub mod local_search;
pub mod mwu;
pub mod nonmonotone;
pub mod pareto;
pub mod saturate;
pub mod smsc;
pub mod streaming;
pub mod tsgreedy;

use crate::items::ItemId;
use crate::metrics::Evaluation;

/// Typed rejection of an algorithm configuration.
///
/// Entry points whose configs carry numeric domains (`ε ∈ (0, 1)`,
/// `shards ≥ 1`) return this instead of asserting, so a bad parameter in
/// a scenario spec surfaces as a recoverable error: the engine adapters
/// map it onto [`crate::engine::SolverError::InvalidParams`], upholding
/// the registry contract that a solve never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidConfig {
    /// The rejecting algorithm (free-function name).
    pub algorithm: &'static str,
    /// What was wrong with the configuration.
    pub message: String,
}

impl InvalidConfig {
    pub(crate) fn new(algorithm: &'static str, message: impl Into<String>) -> Self {
        Self {
            algorithm,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: invalid config: {}", self.algorithm, self.message)
    }
}

impl std::error::Error for InvalidConfig {}

/// Common result shape for BSM solvers (TSGreedy, BSM-Saturate, SMSC,
/// exact solvers), rich enough for the experiment harness to report the
/// paper's figures.
#[derive(Clone, Debug)]
pub struct BsmOutcome {
    /// Chosen items in insertion order.
    pub items: Vec<ItemId>,
    /// Evaluation of the solution (`f`, `g`, per-group means).
    pub eval: Evaluation,
    /// Greedy estimate `OPT'_f` used internally (0 when not computed).
    pub opt_f_estimate: f64,
    /// Saturate estimate `OPT'_g` used internally (0 when not computed).
    pub opt_g_estimate: f64,
    /// Whether the algorithm fell back to the Saturate solution `S_g`
    /// (Alg. 1 lines 8–9, and our documented BSM-Saturate fallback).
    pub fell_back: bool,
    /// Total oracle (`group_gains`) evaluations across all phases.
    pub oracle_calls: u64,
}
