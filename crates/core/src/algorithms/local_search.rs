//! Pairwise-interchange local search for cardinality-constrained
//! monotone submodular maximization.
//!
//! Classic post-processing (Nemhauser et al., 1978 analyze the pure
//! interchange heuristic at 1/2-approximation): starting from any
//! size-`k` solution, repeatedly replace one chosen item by one outside
//! item whenever the swap improves the objective by more than a relative
//! `ε/k` threshold; terminates after `O(k/ε · log(OPT/v₀))` swaps.
//!
//! In this workspace it serves as a *refinement* pass over the BSM
//! schemes' solutions: swaps that improve `f` while keeping the fairness
//! constraint satisfied are accepted, which can only move a solution
//! toward the constrained optimum. The experiment harness and tests use
//! it to quantify how much headroom greedy leaves on the table.

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

/// Configuration for [`local_search_refine`].
#[derive(Clone, Debug)]
pub struct LocalSearchConfig {
    /// Relative improvement threshold per swap (`ε/k` rule); 0 accepts
    /// any strict improvement.
    pub min_relative_gain: f64,
    /// Hard cap on accepted swaps.
    pub max_swaps: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        Self {
            min_relative_gain: 1e-4,
            max_swaps: 200,
        }
    }
}

/// Result of [`local_search_refine`].
#[derive(Clone, Debug)]
pub struct LocalSearchOutcome {
    /// Refined solution (same size as the input).
    pub items: Vec<ItemId>,
    /// Objective value after refinement.
    pub value: f64,
    /// Objective value of the input solution.
    pub initial_value: f64,
    /// Number of accepted swaps.
    pub swaps: usize,
    /// Oracle calls performed.
    pub oracle_calls: u64,
}

/// Improves `initial` by single-item swaps under `constraint` (a
/// predicate over candidate solutions; pass `|_| true` for none).
///
/// The constraint receives the candidate item set after the swap; for
/// BSM use `g(S') ≥ τ·OPT'_g` evaluated through the system.
pub fn local_search_refine<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    initial: &[ItemId],
    constraint: &dyn Fn(&[ItemId]) -> bool,
    cfg: &LocalSearchConfig,
) -> LocalSearchOutcome {
    let n = system.num_items();
    let mut current: Vec<ItemId> = initial.to_vec();
    current.sort_unstable();
    current.dedup();

    let value_of = |items: &[ItemId], calls: &mut u64| -> f64 {
        let mut st = SolutionState::new(system);
        st.insert_all(items);
        *calls += st.oracle_calls();
        st.value(aggregate)
    };

    let mut oracle_calls = 0u64;
    let initial_value = value_of(&current, &mut oracle_calls);
    let mut best_value = initial_value;
    let mut swaps = 0usize;

    'outer: loop {
        if swaps >= cfg.max_swaps {
            break;
        }
        let threshold = best_value.abs().max(1e-12) * cfg.min_relative_gain;
        for out_pos in 0..current.len() {
            for candidate in 0..n as ItemId {
                if current.contains(&candidate) {
                    continue;
                }
                let mut swapped = current.clone();
                swapped[out_pos] = candidate;
                let value = value_of(&swapped, &mut oracle_calls);
                if value > best_value + threshold && constraint(&swapped) {
                    current = swapped;
                    best_value = value;
                    swaps += 1;
                    continue 'outer; // restart the scan from the new point
                }
            }
        }
        break; // no improving swap found
    }

    LocalSearchOutcome {
        items: current,
        value: best_value,
        initial_value,
        swaps,
        oracle_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{MeanUtility, MinGroupUtility};
    use crate::algorithms::exact::brute_force_max;
    use crate::metrics::evaluate;
    use crate::toy;

    #[test]
    fn refine_reaches_local_optimum_from_bad_start() {
        let sys = toy::figure1();
        let f = MeanUtility::new(12);
        // Deliberately bad start: {v3, v4} (f = 5/12).
        let out = local_search_refine(&sys, &f, &[2, 3], &|_| true, &Default::default());
        assert!(out.value > out.initial_value);
        // The global optimum {v1, v2} (0.75) is reachable by two swaps.
        assert!((out.value - 0.75).abs() < 1e-12, "value {}", out.value);
        assert!(out.swaps >= 1);
    }

    #[test]
    fn refine_cannot_worsen() {
        for seed in 1..5u64 {
            let sys = toy::random_coverage(20, 60, 2, 0.12, seed);
            let f = MeanUtility::new(60);
            let start: Vec<ItemId> = vec![0, 1, 2, 3];
            let out = local_search_refine(&sys, &f, &start, &|_| true, &Default::default());
            assert!(out.value + 1e-12 >= out.initial_value, "seed {seed}");
            assert_eq!(out.items.len(), 4);
        }
    }

    #[test]
    fn local_optimum_is_half_of_global() {
        // Interchange-stable solutions are 1/2-approximate; verify on
        // small instances against brute force.
        for seed in 1..5u64 {
            let sys = toy::random_coverage(12, 30, 2, 0.2, seed);
            let f = MeanUtility::new(30);
            let out = local_search_refine(
                &sys,
                &f,
                &[0, 1, 2],
                &|_| true,
                &LocalSearchConfig {
                    min_relative_gain: 0.0,
                    max_swaps: 500,
                },
            );
            let (_, opt) = brute_force_max(&sys, &f, 3);
            assert!(
                out.value + 1e-9 >= 0.5 * opt,
                "seed {seed}: {} < half of {opt}",
                out.value
            );
        }
    }

    #[test]
    fn constrained_refinement_respects_fairness_floor() {
        let sys = toy::figure1();
        let f = MeanUtility::new(12);
        let g = MinGroupUtility::new(&[9, 3]);
        let floor = 0.3;
        let constraint = |items: &[ItemId]| {
            let mut st = crate::system::SolutionState::new(&sys);
            st.insert_all(items);
            st.value(&g) >= floor
        };
        // Start from the fair-but-suboptimal {v1, v4} (f = 7/12).
        let out = local_search_refine(&sys, &f, &[0, 3], &constraint, &Default::default());
        let eval = evaluate(&sys, &out.items);
        assert!(eval.g >= floor - 1e-12, "constraint broken: g {}", eval.g);
        // {v1, v3} (f = 2/3, g = 1/3) is the constrained improvement.
        assert!(out.value + 1e-12 >= 2.0 / 3.0, "value {}", out.value);
    }

    #[test]
    fn swap_budget_is_respected() {
        let sys = toy::random_coverage(30, 80, 2, 0.1, 9);
        let f = MeanUtility::new(80);
        let cfg = LocalSearchConfig {
            min_relative_gain: 0.0,
            max_swaps: 1,
        };
        let out = local_search_refine(&sys, &f, &[0, 1, 2, 3, 4], &|_| true, &cfg);
        assert!(out.swaps <= 1);
    }
}
