//! Greedy maximization of a monotone submodular aggregate under a
//! cardinality constraint, with three evaluation strategies.
//!
//! * **Naive** — evaluates every candidate each round: `O(nk)` oracle
//!   calls, the reference implementation.
//! * **Lazy** (lazy-forward, Leskovec et al. 2007) — keeps stale upper
//!   bounds in a max-heap and re-evaluates only the top candidate;
//!   valid because marginal gains of a submodular function only shrink.
//!   The paper uses this strategy for *all* algorithms in its experiments.
//! * **Stochastic** (Mirzasoleiman et al. 2015) — each round evaluates a
//!   random sample of `⌈(n/k)·ln(1/δ)⌉` candidates, giving
//!   `(1 − 1/e − δ)` expected quality at `O(n log(1/δ))` total calls.
//!
//! The same routine doubles as greedy **submodular cover** (Wolsey 1982)
//! through [`GreedyConfig::stop_at`]: stop as soon as the aggregate value
//! reaches a target, or at the cardinality cap, whichever comes first.
//!
//! ## Resumable core
//!
//! The algorithm itself lives in `GreedyEngine` (crate-internal), a one-round-per-step
//! state machine: `step()` performs exactly one argmax round (select +
//! insert) and records the post-round value and cumulative oracle-call
//! count at every round boundary. The free functions [`greedy`] /
//! [`greedy_into`] are thin drivers that step the engine to completion —
//! their outputs are bit-identical to the historical run-to-completion
//! loops because the engine *is* those loops, cut at the round boundary.
//!
//! Because one greedy round never looks at the budget `k` except to
//! decide whether to stop, the solution for budget `k` is a strict prefix
//! of the solution for any `k′ > k` — including the per-round value
//! trajectory and the oracle-call count at each boundary. That is the
//! prefix property the engine layer's warm k-axis sweeps
//! ([`crate::engine::SolveSession`]) are built on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

/// Candidate evaluation strategy for [`greedy`].
#[derive(Clone, Debug, PartialEq)]
pub enum GreedyVariant {
    /// Evaluate every candidate every round.
    Naive,
    /// Lazy-forward (CELF): re-evaluate only stale heap tops, in
    /// geometrically growing batches through the `group_gains_batch`
    /// seam (default everywhere, as in the paper's experiments).
    Lazy,
    /// Evaluate a uniform random sample of `sample_size` candidates per
    /// round (sampling without replacement, fresh each round).
    Stochastic { sample_size: usize },
}

/// CELF is the default everywhere a variant isn't specified explicitly.
impl Default for GreedyVariant {
    fn default() -> Self {
        GreedyVariant::Lazy
    }
}

/// Ceiling on one CELF re-evaluation batch. Batches grow 1, 2, 4, … per
/// selection round, so total re-evaluations stay within 2× of the
/// one-at-a-time walk while large stale prefixes are still evaluated in
/// parallel-friendly slabs.
pub(crate) const CELF_BATCH_CAP: usize = 1024;

/// Configuration for [`greedy`].
#[derive(Clone, Debug)]
pub struct GreedyConfig {
    /// Cardinality constraint `k` (maximum number of items to pick).
    pub k: usize,
    /// Evaluation strategy.
    pub variant: GreedyVariant,
    /// Optional cover-mode target: stop once the aggregate value is
    /// `≥ stop_at − stop_slack`.
    pub stop_at: Option<f64>,
    /// Numerical slack for `stop_at` comparisons.
    pub stop_slack: f64,
    /// Seed for the stochastic variant.
    pub seed: u64,
}

impl GreedyConfig {
    /// Standard lazy greedy with cardinality `k`.
    pub fn lazy(k: usize) -> Self {
        Self {
            k,
            variant: GreedyVariant::Lazy,
            stop_at: None,
            stop_slack: 1e-9,
            seed: 0,
        }
    }

    /// Naive greedy with cardinality `k`.
    pub fn naive(k: usize) -> Self {
        Self {
            variant: GreedyVariant::Naive,
            ..Self::lazy(k)
        }
    }

    /// Cover mode: grow until `value ≥ target` or `max_size` items.
    pub fn cover(target: f64, max_size: usize) -> Self {
        Self {
            stop_at: Some(target),
            ..Self::lazy(max_size)
        }
    }

    /// Cover mode with an explicit greedy variant.
    pub fn cover_with(target: f64, max_size: usize, variant: GreedyVariant) -> Self {
        Self {
            variant,
            ..Self::cover(target, max_size)
        }
    }
}

/// Result of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// Chosen items in insertion order.
    pub items: Vec<ItemId>,
    /// Aggregate value after each insertion (`trajectory.len() == items.len()`).
    pub trajectory: Vec<f64>,
    /// Final aggregate value.
    pub value: f64,
    /// Whether a `stop_at` target (or the aggregate's saturation value)
    /// was reached.
    pub reached_target: bool,
    /// Oracle (`group_gains`) evaluations performed.
    pub oracle_calls: u64,
}

/// Max-heap entry for lazy-forward: stale upper bound on an item's gain.
/// Crate-visible so the subset greedy (`algorithms::distributed`) runs
/// the exact same CELF ordering and tie-break.
pub(crate) struct HeapEntry {
    pub(crate) bound: f64,
    pub(crate) item: ItemId,
    pub(crate) round: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.item == other.item
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on bound; ties broken toward the smaller item id so the
        // lazy variant matches the naive variant's deterministic argmax.
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.item.cmp(&self.item))
    }
}

/// Runs greedy maximization of `aggregate` over `system`.
///
/// Stops when `cfg.k` items are chosen, when no candidate has positive
/// gain, or when a `stop_at`/saturation target is reached.
///
/// ```
/// use fair_submod_core::prelude::*;
/// use fair_submod_core::toy;
///
/// let system = toy::figure1();
/// let f = MeanUtility::new(system.num_users());
/// let run = greedy(&system, &f, &GreedyConfig::lazy(2));
/// assert_eq!(run.items, vec![0, 1]); // {v1, v2}, f = 0.75
/// assert!((run.value - 0.75).abs() < 1e-12);
/// ```
pub fn greedy<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    cfg: &GreedyConfig,
) -> GreedyOutcome {
    let mut state = SolutionState::new(system);

    greedy_into(&mut state, aggregate, cfg)
}

/// Runs greedy starting from an existing (possibly non-empty) state —
/// used by the two-stage algorithms. See [`greedy`].
pub fn greedy_into<S: UtilitySystem, A: Aggregate>(
    state: &mut SolutionState<'_, S>,
    aggregate: &A,
    cfg: &GreedyConfig,
) -> GreedyOutcome {
    let mut engine = GreedyEngine::new(state, aggregate, cfg.clone());
    while engine.step(state) {}
    engine.into_outcome(state)
}

fn effective_target<A: Aggregate>(aggregate: &A, cfg: &GreedyConfig) -> Option<f64> {
    match (cfg.stop_at, aggregate.saturation_value()) {
        (Some(t), Some(s)) => Some(t.min(s)),
        (Some(t), None) => Some(t),
        (None, Some(s)) => Some(s),
        (None, None) => None,
    }
}

fn target_reached(value: f64, target: Option<f64>, slack: f64) -> bool {
    matches!(target, Some(t) if value + slack >= t)
}

/// Evaluates `candidates` through one [`SolutionState::gains_batch_into`]
/// call and returns the argmax under `aggregate` — scanning rows in
/// candidate order with the same strict `> best + 1e-15` improvement rule
/// as the historical per-item loop, so the winner (and every tie-break)
/// is identical to evaluating candidates one at a time.
pub(crate) fn best_candidate<S: UtilitySystem, A: Aggregate>(
    state: &mut SolutionState<'_, S>,
    aggregate: &A,
    candidates: &[ItemId],
    gains: &mut Vec<f64>,
) -> Option<(f64, ItemId)> {
    if candidates.is_empty() {
        return None;
    }
    let c = state.system().num_groups();
    gains.clear();
    gains.resize(candidates.len() * c, 0.0);
    state.gains_batch_into(candidates, gains);
    let mut best: Option<(f64, ItemId)> = None;
    for (j, &v) in candidates.iter().enumerate() {
        let gain = aggregate.gain(state.group_sums(), &gains[j * c..(j + 1) * c]);
        let better = match best {
            None => true,
            Some((bg, _)) => gain > bg + 1e-15,
        };
        if better {
            best = Some((gain, v));
        }
    }
    best
}

/// Per-variant incremental state of a [`GreedyEngine`].
enum VariantState {
    Naive {
        candidates: Vec<ItemId>,
        gains: Vec<f64>,
    },
    Lazy {
        /// Seeded by the first step's full scan (`None` until then, so
        /// that an already-finished start state never pays the scan).
        heap: Option<BinaryHeap<HeapEntry>>,
        round: usize,
        /// Reused stale-batch and gain-matrix buffers.
        batch: Vec<ItemId>,
        gains: Vec<f64>,
    },
    Stochastic {
        pool: Vec<ItemId>,
        rng: StdRng,
        sample_size: usize,
        gains: Vec<f64>,
    },
}

/// The greedy algorithm as a resumable one-round-per-step state machine.
///
/// Construction captures the start state's value and stop condition;
/// each [`GreedyEngine::step`] performs exactly one greedy round against
/// a [`SolutionState`] **of the same run** (the engine does not hold the
/// state so that callers — sessions in particular — can park the state
/// as parts between steps). After every successful round the engine
/// records the post-round aggregate value and the state's cumulative
/// oracle-call count; those boundary logs are exactly what a cold run
/// with a smaller budget would have reported, which is what makes greedy
/// solutions prefix-extractable per `k`.
pub(crate) struct GreedyEngine<A: Aggregate> {
    cfg: GreedyConfig,
    aggregate: A,
    target: Option<f64>,
    variant: VariantState,
    initial_value: f64,
    value: f64,
    reached: bool,
    done: bool,
    trajectory: Vec<f64>,
    /// `state.oracle_calls()` at each round boundary (after insert `r`).
    round_calls: Vec<u64>,
    /// `state.oracle_calls()` when the engine finished (includes the
    /// final failed scan of an early stop, which a cold run with a
    /// budget beyond the stop point also performs).
    final_calls: Option<u64>,
}

impl<A: Aggregate> GreedyEngine<A> {
    /// Prepares a run of `cfg` continuing from `state` (which may be
    /// non-empty, as in the two-stage algorithms).
    pub(crate) fn new<S: UtilitySystem>(
        state: &mut SolutionState<'_, S>,
        aggregate: A,
        cfg: GreedyConfig,
    ) -> Self {
        let target = effective_target(&aggregate, &cfg);
        let value = state.value(&aggregate);
        let reached = target_reached(value, target, cfg.stop_slack);
        let variant = match cfg.variant {
            GreedyVariant::Naive => VariantState::Naive {
                candidates: Vec::with_capacity(state.system().num_items()),
                gains: Vec::new(),
            },
            GreedyVariant::Lazy => VariantState::Lazy {
                heap: None,
                round: 0,
                batch: Vec::new(),
                gains: Vec::new(),
            },
            GreedyVariant::Stochastic { sample_size } => {
                let n = state.system().num_items();
                VariantState::Stochastic {
                    pool: (0..n as ItemId).filter(|&v| !state.contains(v)).collect(),
                    rng: StdRng::seed_from_u64(cfg.seed),
                    sample_size,
                    gains: Vec::new(),
                }
            }
        };
        Self {
            cfg,
            aggregate,
            target,
            variant,
            initial_value: value,
            value,
            reached,
            done: false,
            trajectory: Vec::new(),
            round_calls: Vec::new(),
            final_calls: None,
        }
    }

    /// Performs one greedy round. Returns `true` while more rounds
    /// remain, `false` once the run has finished (budget exhausted,
    /// target reached, or no candidate with positive gain).
    pub(crate) fn step<S: UtilitySystem>(&mut self, state: &mut SolutionState<'_, S>) -> bool {
        if self.done {
            return false;
        }
        if state.len() >= self.cfg.k || self.reached {
            return self.finish(state);
        }
        let aggregate = &self.aggregate;
        let inserted = match &mut self.variant {
            VariantState::Naive { candidates, gains } => {
                let n = state.system().num_items();
                // One batched oracle call per round: every remaining
                // candidate in ascending id order, so the argmax
                // tie-breaking matches the historical per-item scan.
                candidates.clear();
                candidates.extend((0..n as ItemId).filter(|&v| !state.contains(v)));
                match best_candidate(state, aggregate, candidates, gains) {
                    Some((gain, v)) if gain > 1e-15 => {
                        state.insert(v);
                        true
                    }
                    _ => false,
                }
            }
            VariantState::Lazy {
                heap,
                round,
                batch,
                gains,
            } => {
                if heap.is_none() {
                    // Round 0: evaluate everything once — through the
                    // batch seam, so the full scan that dominates lazy
                    // greedy's cost runs in parallel — to seed the heap.
                    let n = state.system().num_items();
                    let candidates: Vec<ItemId> =
                        (0..n as ItemId).filter(|&v| !state.contains(v)).collect();
                    let c = state.system().num_groups();
                    let mut seed_gains = vec![0.0; candidates.len() * c];
                    state.gains_batch_into(&candidates, &mut seed_gains);
                    let mut seeded = BinaryHeap::with_capacity(n);
                    for (j, &v) in candidates.iter().enumerate() {
                        let bound =
                            aggregate.gain(state.group_sums(), &seed_gains[j * c..(j + 1) * c]);
                        seeded.push(HeapEntry {
                            bound,
                            item: v,
                            round: 0,
                        });
                    }
                    *heap = Some(seeded);
                }
                let heap = heap.as_mut().expect("seeded above");
                // CELF with batched refreshes: while the top is stale,
                // pop a slab of consecutive stale entries, re-evaluate
                // them in ONE `gains_batch_into` call, and push them
                // back fresh. Stale bounds only overestimate (submodular
                // gains shrink), so whichever fresh entry surfaces is
                // the exact argmax with the exact heap tie-break the
                // one-at-a-time walk selects; batching only changes how
                // many refreshes happen, never which item wins. Slabs
                // double from 1 so the refresh total stays within 2× of
                // the strict walk while big stale prefixes still hit the
                // parallel batch path.
                let c = state.system().num_groups();
                let mut slab = 1usize;
                let chosen = loop {
                    match heap.peek() {
                        None => break None,
                        Some(entry) if entry.round == *round => {
                            break heap.pop();
                        }
                        Some(_) => {}
                    }
                    batch.clear();
                    while batch.len() < slab {
                        match heap.peek() {
                            Some(entry) if entry.round != *round => {
                                batch.push(heap.pop().expect("peeked").item);
                            }
                            _ => break,
                        }
                    }
                    gains.clear();
                    gains.resize(batch.len() * c, 0.0);
                    state.gains_batch_into(batch, gains);
                    for (j, &v) in batch.iter().enumerate() {
                        let bound = aggregate.gain(state.group_sums(), &gains[j * c..(j + 1) * c]);
                        heap.push(HeapEntry {
                            bound,
                            item: v,
                            round: *round,
                        });
                    }
                    slab = (slab * 2).min(CELF_BATCH_CAP);
                };
                match chosen {
                    Some(entry) if entry.bound > 1e-15 => {
                        state.insert(entry.item);
                        *round += 1;
                        true
                    }
                    _ => false,
                }
            }
            VariantState::Stochastic {
                pool,
                rng,
                sample_size,
                gains,
            } => {
                if pool.is_empty() {
                    false
                } else {
                    let s = (*sample_size).max(1).min(pool.len());
                    // Partial Fisher–Yates: the first `s` entries become
                    // the sample, then one batched oracle call evaluates
                    // the whole sample.
                    for i in 0..s {
                        let j = i + (rand::Rng::gen_range(rng, 0..pool.len() - i));
                        pool.swap(i, j);
                    }
                    let sample: Vec<ItemId> = pool[..s].to_vec();
                    let mut inserted = false;
                    match best_candidate(state, aggregate, &sample, gains) {
                        Some((gain, v)) if gain > 1e-15 => {
                            state.insert(v);
                            pool.retain(|&x| x != v);
                            inserted = true;
                        }
                        _ => {
                            // The sample had no improving candidate; with
                            // monotone aggregates this can only be sampling
                            // bad luck or true exhaustion — reshuffle once
                            // more and fall back to a full scan to decide.
                            pool.shuffle(rng);
                            let mut any = None;
                            for &v in pool.iter() {
                                let gain = state.gain(aggregate, v);
                                if gain > 1e-15 {
                                    any = Some(v);
                                    break;
                                }
                            }
                            if let Some(v) = any {
                                state.insert(v);
                                pool.retain(|&x| x != v);
                                inserted = true;
                            }
                        }
                    }
                    inserted
                }
            }
        };
        if !inserted {
            return self.finish(state);
        }
        self.value = state.value(&self.aggregate);
        self.trajectory.push(self.value);
        self.round_calls.push(state.oracle_calls());
        self.reached = target_reached(self.value, self.target, self.cfg.stop_slack);
        if state.len() >= self.cfg.k || self.reached {
            return self.finish(state);
        }
        true
    }

    fn finish<S: UtilitySystem>(&mut self, state: &mut SolutionState<'_, S>) -> bool {
        self.done = true;
        self.final_calls = Some(state.oracle_calls());
        false
    }

    /// Whether the run has finished.
    pub(crate) fn is_done(&self) -> bool {
        self.done
    }

    /// Rounds completed so far (= items inserted by this engine).
    pub(crate) fn rounds(&self) -> usize {
        self.trajectory.len()
    }

    /// Current aggregate value.
    pub(crate) fn value(&self) -> f64 {
        self.value
    }

    /// Whether the stop target (or aggregate saturation) was reached.
    pub(crate) fn reached_target(&self) -> bool {
        self.reached
    }

    /// The aggregate value a cold run with budget `k` would have ended
    /// at: the round-`k` boundary value, or the final value when the run
    /// stopped before round `k`. Only meaningful once enough rounds ran
    /// (`rounds() >= k` or [`GreedyEngine::is_done`]).
    pub(crate) fn value_at(&self, k: usize) -> f64 {
        if k == 0 {
            self.initial_value
        } else if k <= self.trajectory.len() {
            self.trajectory[k - 1]
        } else {
            self.value
        }
    }

    /// The cumulative oracle-call count a cold run with budget `k`
    /// would have reported. For `k` beyond the stop point this includes
    /// the final failed scan (a cold run performs it too).
    pub(crate) fn calls_at(&self, k: usize) -> u64 {
        if k == 0 {
            0
        } else if k <= self.round_calls.len() {
            self.round_calls[k - 1]
        } else {
            self.final_calls
                .expect("calls_at beyond rounds requires a finished engine")
        }
    }

    /// Whether a cold run with budget `k` would have reported reaching
    /// its target (only the final round can reach it). Exercised by the
    /// round-boundary equivalence test; sessions report only the final
    /// `reached` state.
    #[cfg(test)]
    pub(crate) fn reached_at(&self, k: usize) -> bool {
        self.reached && k >= self.trajectory.len()
    }

    /// Finalizes the historical [`GreedyOutcome`] shape from a finished
    /// (or abandoned) run.
    pub(crate) fn into_outcome<S: UtilitySystem>(
        self,
        state: &SolutionState<'_, S>,
    ) -> GreedyOutcome {
        GreedyOutcome {
            items: state.items().to_vec(),
            trajectory: self.trajectory,
            value: self.value,
            reached_target: self.reached,
            oracle_calls: state.oracle_calls(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{MeanUtility, TruncatedMean};
    use crate::toy;

    #[test]
    fn figure1_greedy_picks_v1_v2() {
        // Example 3.1: greedy on f returns S12 = {v1, v2} with f = 0.75.
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        for cfg in [GreedyConfig::naive(2), GreedyConfig::lazy(2)] {
            let out = greedy(&sys, &f, &cfg);
            assert_eq!(out.items, vec![0, 1]);
            assert!((out.value - 0.75).abs() < 1e-12);
            assert_eq!(out.trajectory.len(), 2);
        }
    }

    #[test]
    fn lazy_matches_naive_on_random_instances() {
        for seed in 1..6u64 {
            let sys = toy::random_coverage(24, 80, 4, 0.12, seed);
            let f = MeanUtility::new(sys.num_users());
            let naive = greedy(&sys, &f, &GreedyConfig::naive(6));
            let lazy = greedy(&sys, &f, &GreedyConfig::lazy(6));
            assert_eq!(naive.items, lazy.items, "seed {seed}");
            assert!((naive.value - lazy.value).abs() < 1e-12);
            // Lazy should never evaluate more than naive.
            assert!(lazy.oracle_calls <= naive.oracle_calls);
        }
    }

    #[test]
    fn stochastic_greedy_is_reasonable() {
        let sys = toy::random_coverage(40, 120, 3, 0.1, 11);
        let f = MeanUtility::new(sys.num_users());
        let exactish = greedy(&sys, &f, &GreedyConfig::naive(8));
        let mut cfg = GreedyConfig::lazy(8);
        cfg.variant = GreedyVariant::Stochastic { sample_size: 20 };
        cfg.seed = 3;
        let stoch = greedy(&sys, &f, &cfg);
        assert_eq!(stoch.items.len(), 8);
        assert!(stoch.value >= 0.7 * exactish.value);
    }

    #[test]
    fn naive_oracle_calls_are_counted_exactly_once_per_candidate() {
        // Batched rounds must account one call per evaluated candidate:
        // round r scans (n − r) candidates, plus one call per insert.
        let sys = toy::random_coverage(24, 80, 4, 0.12, 2);
        let f = MeanUtility::new(sys.num_users());
        let n = sys.num_items() as u64;
        let k = 6u64;
        let naive = greedy(&sys, &f, &GreedyConfig::naive(k as usize));
        assert_eq!(naive.items.len() as u64, k, "instance saturated early");
        let scans: u64 = (0..k).map(|r| n - r).sum();
        assert_eq!(naive.oracle_calls, scans + k);
        // Lazy evaluates the same round-0 scan but strictly fewer calls
        // afterwards on any instance where stale bounds survive.
        let lazy = greedy(&sys, &f, &GreedyConfig::lazy(k as usize));
        assert!(lazy.oracle_calls >= n + k);
        assert!(lazy.oracle_calls < naive.oracle_calls);
    }

    #[test]
    fn cover_mode_stops_at_target() {
        let sys = toy::figure1();
        let t = TruncatedMean::uniform(sys.group_sizes(), 0.3);
        let cfg = GreedyConfig::cover(1.0, 4);
        let out = greedy(&sys, &t, &cfg);
        assert!(out.reached_target);
        assert!(out.value + 1e-9 >= 1.0);
        assert!(out.items.len() <= 4);
    }

    #[test]
    fn greedy_stops_when_no_gain() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        // k=10 > n: greedy must stop once everything useful is chosen.
        let out = greedy(&sys, &f, &GreedyConfig::lazy(10));
        assert!(out.items.len() <= 4);
        assert!((out.value - 1.0).abs() < 1e-12); // all 12 users covered by all 4 items
    }

    #[test]
    fn greedy_into_respects_existing_items() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        let mut state = crate::system::SolutionState::new(&sys);
        state.insert(3); // v4
        let out = greedy_into(&mut state, &f, &GreedyConfig::lazy(2));
        assert_eq!(out.items.len(), 2);
        assert_eq!(out.items[0], 3);
        assert_eq!(out.items[1], 0); // v1 is the best complement to v4
    }

    /// The engine's round-boundary logs must equal cold runs at every
    /// smaller budget — the invariant behind warm k-axis sweeps.
    #[test]
    fn engine_round_boundaries_match_cold_runs_at_every_k() {
        let sys = toy::random_coverage(30, 90, 3, 0.1, 7);
        let f = MeanUtility::new(sys.num_users());
        let variants = [
            GreedyVariant::Naive,
            GreedyVariant::Lazy,
            GreedyVariant::Stochastic { sample_size: 9 },
        ];
        for variant in variants {
            let max_k = 8;
            let warm_cfg = GreedyConfig {
                variant: variant.clone(),
                seed: 5,
                ..GreedyConfig::lazy(max_k)
            };
            let mut state = SolutionState::new(&sys);
            let mut engine = GreedyEngine::new(&mut state, &f, warm_cfg.clone());
            while engine.step(&mut state) {}
            for k in 0..=max_k {
                let cold_cfg = GreedyConfig {
                    k,
                    ..warm_cfg.clone()
                };
                let cold = greedy(&sys, &f, &cold_cfg);
                let r = k.min(engine.rounds());
                assert_eq!(cold.items, state.items()[..r], "{variant:?} k={k}");
                assert_eq!(
                    cold.value.to_bits(),
                    engine.value_at(k).to_bits(),
                    "{variant:?} k={k}"
                );
                assert_eq!(cold.oracle_calls, engine.calls_at(k), "{variant:?} k={k}");
                assert_eq!(
                    cold.reached_target,
                    engine.reached_at(k),
                    "{variant:?} k={k}"
                );
            }
        }
    }
}
