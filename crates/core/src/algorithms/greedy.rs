//! Greedy maximization of a monotone submodular aggregate under a
//! cardinality constraint, with three evaluation strategies.
//!
//! * **Naive** — evaluates every candidate each round: `O(nk)` oracle
//!   calls, the reference implementation.
//! * **Lazy** (lazy-forward, Leskovec et al. 2007) — keeps stale upper
//!   bounds in a max-heap and re-evaluates only the top candidate;
//!   valid because marginal gains of a submodular function only shrink.
//!   The paper uses this strategy for *all* algorithms in its experiments.
//! * **Stochastic** (Mirzasoleiman et al. 2015) — each round evaluates a
//!   random sample of `⌈(n/k)·ln(1/δ)⌉` candidates, giving
//!   `(1 − 1/e − δ)` expected quality at `O(n log(1/δ))` total calls.
//!
//! The same routine doubles as greedy **submodular cover** (Wolsey 1982)
//! through [`GreedyConfig::stop_at`]: stop as soon as the aggregate value
//! reaches a target, or at the cardinality cap, whichever comes first.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

/// Candidate evaluation strategy for [`greedy`].
#[derive(Clone, Debug, PartialEq)]
pub enum GreedyVariant {
    /// Evaluate every candidate every round.
    Naive,
    /// Lazy-forward: re-evaluate only the heap top (default everywhere,
    /// as in the paper's experiments).
    Lazy,
    /// Evaluate a uniform random sample of `sample_size` candidates per
    /// round (sampling without replacement, fresh each round).
    Stochastic { sample_size: usize },
}

/// Configuration for [`greedy`].
#[derive(Clone, Debug)]
pub struct GreedyConfig {
    /// Cardinality constraint `k` (maximum number of items to pick).
    pub k: usize,
    /// Evaluation strategy.
    pub variant: GreedyVariant,
    /// Optional cover-mode target: stop once the aggregate value is
    /// `≥ stop_at − stop_slack`.
    pub stop_at: Option<f64>,
    /// Numerical slack for `stop_at` comparisons.
    pub stop_slack: f64,
    /// Seed for the stochastic variant.
    pub seed: u64,
}

impl GreedyConfig {
    /// Standard lazy greedy with cardinality `k`.
    pub fn lazy(k: usize) -> Self {
        Self {
            k,
            variant: GreedyVariant::Lazy,
            stop_at: None,
            stop_slack: 1e-9,
            seed: 0,
        }
    }

    /// Naive greedy with cardinality `k`.
    pub fn naive(k: usize) -> Self {
        Self {
            variant: GreedyVariant::Naive,
            ..Self::lazy(k)
        }
    }

    /// Cover mode: grow until `value ≥ target` or `max_size` items.
    pub fn cover(target: f64, max_size: usize) -> Self {
        Self {
            stop_at: Some(target),
            ..Self::lazy(max_size)
        }
    }

    /// Cover mode with an explicit greedy variant.
    pub fn cover_with(target: f64, max_size: usize, variant: GreedyVariant) -> Self {
        Self {
            variant,
            ..Self::cover(target, max_size)
        }
    }
}

/// Result of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// Chosen items in insertion order.
    pub items: Vec<ItemId>,
    /// Aggregate value after each insertion (`trajectory.len() == items.len()`).
    pub trajectory: Vec<f64>,
    /// Final aggregate value.
    pub value: f64,
    /// Whether a `stop_at` target (or the aggregate's saturation value)
    /// was reached.
    pub reached_target: bool,
    /// Oracle (`group_gains`) evaluations performed.
    pub oracle_calls: u64,
}

impl GreedyOutcome {
    fn from_state<S: UtilitySystem>(
        state: &SolutionState<'_, S>,
        trajectory: Vec<f64>,
        value: f64,
        reached_target: bool,
    ) -> Self {
        Self {
            items: state.items().to_vec(),
            trajectory,
            value,
            reached_target,
            oracle_calls: state.oracle_calls(),
        }
    }
}

/// Max-heap entry for lazy-forward: stale upper bound on an item's gain.
struct HeapEntry {
    bound: f64,
    item: ItemId,
    round: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.item == other.item
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on bound; ties broken toward the smaller item id so the
        // lazy variant matches the naive variant's deterministic argmax.
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.item.cmp(&self.item))
    }
}

/// Runs greedy maximization of `aggregate` over `system`.
///
/// Stops when `cfg.k` items are chosen, when no candidate has positive
/// gain, or when a `stop_at`/saturation target is reached.
///
/// ```
/// use fair_submod_core::prelude::*;
/// use fair_submod_core::toy;
///
/// let system = toy::figure1();
/// let f = MeanUtility::new(system.num_users());
/// let run = greedy(&system, &f, &GreedyConfig::lazy(2));
/// assert_eq!(run.items, vec![0, 1]); // {v1, v2}, f = 0.75
/// assert!((run.value - 0.75).abs() < 1e-12);
/// ```
pub fn greedy<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    cfg: &GreedyConfig,
) -> GreedyOutcome {
    let mut state = SolutionState::new(system);

    greedy_into(&mut state, aggregate, cfg)
}

/// Runs greedy starting from an existing (possibly non-empty) state —
/// used by the two-stage algorithms. See [`greedy`].
pub fn greedy_into<S: UtilitySystem, A: Aggregate>(
    state: &mut SolutionState<'_, S>,
    aggregate: &A,
    cfg: &GreedyConfig,
) -> GreedyOutcome {
    let target = effective_target(aggregate, cfg);
    match cfg.variant {
        GreedyVariant::Naive => greedy_naive(state, aggregate, cfg, target),
        GreedyVariant::Lazy => greedy_lazy(state, aggregate, cfg, target),
        GreedyVariant::Stochastic { sample_size } => {
            greedy_stochastic(state, aggregate, cfg, target, sample_size)
        }
    }
}

fn effective_target<A: Aggregate>(aggregate: &A, cfg: &GreedyConfig) -> Option<f64> {
    match (cfg.stop_at, aggregate.saturation_value()) {
        (Some(t), Some(s)) => Some(t.min(s)),
        (Some(t), None) => Some(t),
        (None, Some(s)) => Some(s),
        (None, None) => None,
    }
}

fn target_reached(value: f64, target: Option<f64>, slack: f64) -> bool {
    matches!(target, Some(t) if value + slack >= t)
}

/// Evaluates `candidates` through one [`SolutionState::gains_batch_into`]
/// call and returns the argmax under `aggregate` — scanning rows in
/// candidate order with the same strict `> best + 1e-15` improvement rule
/// as the historical per-item loop, so the winner (and every tie-break)
/// is identical to evaluating candidates one at a time.
fn best_candidate<S: UtilitySystem, A: Aggregate>(
    state: &mut SolutionState<'_, S>,
    aggregate: &A,
    candidates: &[ItemId],
    gains: &mut Vec<f64>,
) -> Option<(f64, ItemId)> {
    if candidates.is_empty() {
        return None;
    }
    let c = state.system().num_groups();
    gains.clear();
    gains.resize(candidates.len() * c, 0.0);
    state.gains_batch_into(candidates, gains);
    let mut best: Option<(f64, ItemId)> = None;
    for (j, &v) in candidates.iter().enumerate() {
        let gain = aggregate.gain(state.group_sums(), &gains[j * c..(j + 1) * c]);
        let better = match best {
            None => true,
            Some((bg, _)) => gain > bg + 1e-15,
        };
        if better {
            best = Some((gain, v));
        }
    }
    best
}

fn greedy_naive<S: UtilitySystem, A: Aggregate>(
    state: &mut SolutionState<'_, S>,
    aggregate: &A,
    cfg: &GreedyConfig,
    target: Option<f64>,
) -> GreedyOutcome {
    let n = state.system().num_items();
    let mut trajectory = Vec::with_capacity(cfg.k);
    let mut value = state.value(aggregate);
    let mut reached = target_reached(value, target, cfg.stop_slack);
    let mut candidates: Vec<ItemId> = Vec::with_capacity(n);
    let mut gains: Vec<f64> = Vec::new();
    while state.len() < cfg.k && !reached {
        // One batched oracle call per round: every remaining candidate in
        // ascending id order, so the argmax tie-breaking matches the
        // historical per-item scan exactly.
        candidates.clear();
        candidates.extend((0..n as ItemId).filter(|&v| !state.contains(v)));
        let best = best_candidate(state, aggregate, &candidates, &mut gains);
        match best {
            Some((gain, v)) if gain > 1e-15 => {
                state.insert(v);
                value = state.value(aggregate);
                trajectory.push(value);
                reached = target_reached(value, target, cfg.stop_slack);
            }
            _ => break,
        }
    }
    GreedyOutcome::from_state(state, trajectory, value, reached)
}

fn greedy_lazy<S: UtilitySystem, A: Aggregate>(
    state: &mut SolutionState<'_, S>,
    aggregate: &A,
    cfg: &GreedyConfig,
    target: Option<f64>,
) -> GreedyOutcome {
    let n = state.system().num_items();
    let mut trajectory = Vec::with_capacity(cfg.k);
    let mut value = state.value(aggregate);
    let mut reached = target_reached(value, target, cfg.stop_slack);
    if reached || state.len() >= cfg.k {
        return GreedyOutcome::from_state(state, trajectory, value, reached);
    }

    // Round 0: evaluate everything once — through the batch seam, so the
    // full scan that dominates lazy greedy's cost runs in parallel — to
    // seed the heap. Heap contents (and thus all later pops) are
    // identical to the per-item loop; `BinaryHeap` ordering depends only
    // on the entries, and ties break on item id.
    let candidates: Vec<ItemId> = (0..n as ItemId).filter(|&v| !state.contains(v)).collect();
    let c = state.system().num_groups();
    let mut gains = vec![0.0; candidates.len() * c];
    state.gains_batch_into(&candidates, &mut gains);
    let mut heap = BinaryHeap::with_capacity(n);
    for (j, &v) in candidates.iter().enumerate() {
        let bound = aggregate.gain(state.group_sums(), &gains[j * c..(j + 1) * c]);
        heap.push(HeapEntry {
            bound,
            item: v,
            round: 0,
        });
    }

    let mut round = 0usize;
    while state.len() < cfg.k && !reached {
        // Pop until the top entry is fresh for this round.
        let chosen = loop {
            match heap.pop() {
                None => break None,
                Some(entry) => {
                    if entry.round == round {
                        break Some(entry);
                    }
                    let bound = state.gain(aggregate, entry.item);
                    heap.push(HeapEntry {
                        bound,
                        item: entry.item,
                        round,
                    });
                }
            }
        };
        match chosen {
            Some(entry) if entry.bound > 1e-15 => {
                state.insert(entry.item);
                value = state.value(aggregate);
                trajectory.push(value);
                reached = target_reached(value, target, cfg.stop_slack);
                round += 1;
            }
            _ => break,
        }
    }
    GreedyOutcome::from_state(state, trajectory, value, reached)
}

fn greedy_stochastic<S: UtilitySystem, A: Aggregate>(
    state: &mut SolutionState<'_, S>,
    aggregate: &A,
    cfg: &GreedyConfig,
    target: Option<f64>,
    sample_size: usize,
) -> GreedyOutcome {
    let n = state.system().num_items();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut trajectory = Vec::with_capacity(cfg.k);
    let mut value = state.value(aggregate);
    let mut reached = target_reached(value, target, cfg.stop_slack);
    let mut pool: Vec<ItemId> = (0..n as ItemId).filter(|&v| !state.contains(v)).collect();
    let mut gains: Vec<f64> = Vec::new();

    while state.len() < cfg.k && !reached && !pool.is_empty() {
        let s = sample_size.max(1).min(pool.len());
        // Partial Fisher–Yates: the first `s` entries become the sample,
        // then one batched oracle call evaluates the whole sample.
        for i in 0..s {
            let j = i + (rand::Rng::gen_range(&mut rng, 0..pool.len() - i));
            pool.swap(i, j);
        }
        let best = best_candidate(state, aggregate, &pool[..s], &mut gains);
        match best {
            Some((gain, v)) if gain > 1e-15 => {
                state.insert(v);
                pool.retain(|&x| x != v);
                value = state.value(aggregate);
                trajectory.push(value);
                reached = target_reached(value, target, cfg.stop_slack);
            }
            _ => {
                // The sample had no improving candidate; with monotone
                // aggregates this can only be sampling bad luck or true
                // exhaustion — reshuffle once more and fall back to a
                // full scan to decide.
                pool.shuffle(&mut rng);
                let mut any = None;
                for &v in pool.iter() {
                    let gain = state.gain(aggregate, v);
                    if gain > 1e-15 {
                        any = Some(v);
                        break;
                    }
                }
                match any {
                    Some(v) => {
                        state.insert(v);
                        pool.retain(|&x| x != v);
                        value = state.value(aggregate);
                        trajectory.push(value);
                        reached = target_reached(value, target, cfg.stop_slack);
                    }
                    None => break,
                }
            }
        }
    }
    GreedyOutcome::from_state(state, trajectory, value, reached)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{MeanUtility, TruncatedMean};
    use crate::toy;

    #[test]
    fn figure1_greedy_picks_v1_v2() {
        // Example 3.1: greedy on f returns S12 = {v1, v2} with f = 0.75.
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        for cfg in [GreedyConfig::naive(2), GreedyConfig::lazy(2)] {
            let out = greedy(&sys, &f, &cfg);
            assert_eq!(out.items, vec![0, 1]);
            assert!((out.value - 0.75).abs() < 1e-12);
            assert_eq!(out.trajectory.len(), 2);
        }
    }

    #[test]
    fn lazy_matches_naive_on_random_instances() {
        for seed in 1..6u64 {
            let sys = toy::random_coverage(24, 80, 4, 0.12, seed);
            let f = MeanUtility::new(sys.num_users());
            let naive = greedy(&sys, &f, &GreedyConfig::naive(6));
            let lazy = greedy(&sys, &f, &GreedyConfig::lazy(6));
            assert_eq!(naive.items, lazy.items, "seed {seed}");
            assert!((naive.value - lazy.value).abs() < 1e-12);
            // Lazy should never evaluate more than naive.
            assert!(lazy.oracle_calls <= naive.oracle_calls);
        }
    }

    #[test]
    fn stochastic_greedy_is_reasonable() {
        let sys = toy::random_coverage(40, 120, 3, 0.1, 11);
        let f = MeanUtility::new(sys.num_users());
        let exactish = greedy(&sys, &f, &GreedyConfig::naive(8));
        let mut cfg = GreedyConfig::lazy(8);
        cfg.variant = GreedyVariant::Stochastic { sample_size: 20 };
        cfg.seed = 3;
        let stoch = greedy(&sys, &f, &cfg);
        assert_eq!(stoch.items.len(), 8);
        assert!(stoch.value >= 0.7 * exactish.value);
    }

    #[test]
    fn naive_oracle_calls_are_counted_exactly_once_per_candidate() {
        // Batched rounds must account one call per evaluated candidate:
        // round r scans (n − r) candidates, plus one call per insert.
        let sys = toy::random_coverage(24, 80, 4, 0.12, 2);
        let f = MeanUtility::new(sys.num_users());
        let n = sys.num_items() as u64;
        let k = 6u64;
        let naive = greedy(&sys, &f, &GreedyConfig::naive(k as usize));
        assert_eq!(naive.items.len() as u64, k, "instance saturated early");
        let scans: u64 = (0..k).map(|r| n - r).sum();
        assert_eq!(naive.oracle_calls, scans + k);
        // Lazy evaluates the same round-0 scan but strictly fewer calls
        // afterwards on any instance where stale bounds survive.
        let lazy = greedy(&sys, &f, &GreedyConfig::lazy(k as usize));
        assert!(lazy.oracle_calls >= n + k);
        assert!(lazy.oracle_calls < naive.oracle_calls);
    }

    #[test]
    fn cover_mode_stops_at_target() {
        let sys = toy::figure1();
        let t = TruncatedMean::uniform(sys.group_sizes(), 0.3);
        let cfg = GreedyConfig::cover(1.0, 4);
        let out = greedy(&sys, &t, &cfg);
        assert!(out.reached_target);
        assert!(out.value + 1e-9 >= 1.0);
        assert!(out.items.len() <= 4);
    }

    #[test]
    fn greedy_stops_when_no_gain() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        // k=10 > n: greedy must stop once everything useful is chosen.
        let out = greedy(&sys, &f, &GreedyConfig::lazy(10));
        assert!(out.items.len() <= 4);
        assert!((out.value - 1.0).abs() < 1e-12); // all 12 users covered by all 4 items
    }

    #[test]
    fn greedy_into_respects_existing_items() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        let mut state = crate::system::SolutionState::new(&sys);
        state.insert(3); // v4
        let out = greedy_into(&mut state, &f, &GreedyConfig::lazy(2));
        assert_eq!(out.items.len(), 2);
        assert_eq!(out.items[0], 3);
        assert_eq!(out.items[1], 0); // v1 is the best complement to v4
    }
}
