//! **BSM-TSGreedy** — the two-stage greedy algorithm for BSM
//! (Algorithm 1 of the paper).
//!
//! Stage 0 computes the ingredient estimates: `S_f, OPT'_f` by greedy on
//! `f` and `S_g, OPT'_g` by Saturate on `g`. Stage 1 greedily covers
//! `g'_τ(S) = (1/c) Σ_i min{1, f_i(S)/(τ·OPT'_g)}` up to value 1 (at most
//! `k` items); if that fails at size `k`, the solution is replaced by
//! `S_g` (which satisfies `g'_τ(S_g) = 1` by construction, lines 8–9).
//! Stage 2 tops the solution up to size `k` with the greedy-for-`f`
//! prefix, in greedy order (lines 10–15).
//!
//! Guarantee (Theorem 4.2): a
//! `(1 − e^{−k'/k}, 1 − ε_g)`-approximate size-`k` solution, where `k'`
//! is the number of stage-2 items.

use crate::aggregate::TruncatedMean;
use crate::metrics::evaluate_state;
use crate::system::{SolutionState, UtilitySystem};

use super::greedy::{greedy, GreedyConfig, GreedyVariant};
use super::saturate::SaturateConfig;
use super::BsmOutcome;

/// Configuration for [`bsm_tsgreedy`].
#[derive(Clone, Debug)]
pub struct TsGreedyConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Balance factor `τ ∈ \[0, 1\]`.
    pub tau: f64,
    /// Greedy evaluation strategy (lazy-forward by default, as in the
    /// paper's experiments).
    pub variant: GreedyVariant,
    /// Saturate configuration for estimating `OPT'_g` / computing `S_g`.
    pub saturate: SaturateConfig,
}

impl TsGreedyConfig {
    /// Paper defaults for a `(k, τ)` instance.
    pub fn new(k: usize, tau: f64) -> Self {
        assert!((0.0..=1.0).contains(&tau), "τ must lie in [0, 1]");
        Self {
            k,
            tau,
            variant: GreedyVariant::Lazy,
            saturate: SaturateConfig::new(k),
        }
    }
}

/// Detailed result of a [`bsm_tsgreedy`] run.
#[derive(Clone, Debug)]
pub struct TsGreedyOutcome {
    /// The BSM outcome (items, evaluation, estimates, fallback flag).
    pub bsm: BsmOutcome,
    /// Number of items chosen in stage 1 (cover on `g'_τ`); `k'` of
    /// Theorem 4.2 equals `k − stage1_len` when no fallback occurred.
    pub stage1_len: usize,
}

/// Runs BSM-TSGreedy (Algorithm 1 of the paper).
///
/// ```
/// use fair_submod_core::prelude::*;
/// use fair_submod_core::toy;
///
/// let system = toy::figure1();
/// // τ = 0.2: stage 1 covers g'_τ with v3, stage 2 tops up with v1.
/// let out = bsm_tsgreedy(&system, &TsGreedyConfig::new(2, 0.2));
/// let mut items = out.items.clone();
/// items.sort();
/// assert_eq!(items, vec![0, 2]);
/// assert!(out.eval.g >= 0.2 * out.opt_g_estimate);
/// ```
pub fn bsm_tsgreedy<S: UtilitySystem>(system: &S, cfg: &TsGreedyConfig) -> BsmOutcome {
    bsm_tsgreedy_detailed(system, cfg).bsm
}

/// Runs BSM-TSGreedy and additionally reports stage sizes.
///
/// Thin driver over [`TsGreedyStepper`]: steps the state machine to
/// completion, so one-shot calls and resumable sessions run the exact
/// same code and produce bit-identical outcomes.
pub fn bsm_tsgreedy_detailed<S: UtilitySystem>(
    system: &S,
    cfg: &TsGreedyConfig,
) -> TsGreedyOutcome {
    let mut stepper = TsGreedyStepper::new(system, cfg);
    while stepper.step(system) {}
    stepper.into_outcome()
}

enum TsGreedyPhase {
    /// Line 1: greedy on `f` (one step).
    GreedyF,
    /// Line 2: Saturate on `g` — one inner Saturate step per step.
    Saturate,
    /// Lines 3–9: one stage-1 cover round per step.
    Stage1,
    /// Lines 10–15: top-up with the greedy-for-`f` prefix (one step).
    TopUp,
    /// Finished; the outcome is ready.
    Done,
}

/// BSM-TSGreedy as a resumable state machine: estimate stages, then one
/// stage-1 cover round per [`TsGreedyStepper::step`], then the top-up.
///
/// The stage-1 cover drives a greedy engine round by round over a
/// solution state that is parked between steps, so the operation
/// sequence — and therefore every item choice and oracle-call count —
/// is identical to the historical run-to-completion function (which is
/// itself implemented over this stepper). The stepper is generic over
/// the system's incremental state type `I = S::Inner`; every `step`
/// call must receive the same `system` the stepper was created with.
pub struct TsGreedyStepper<I> {
    cfg: TsGreedyConfig,
    sizes: Vec<usize>,
    m: usize,
    phase: TsGreedyPhase,
    run_f: Option<super::greedy::GreedyOutcome>,
    saturate_stepper: Option<super::saturate::SaturateStepper>,
    sat: Option<super::saturate::SaturateOutcome>,
    cover: Option<super::greedy::GreedyEngine<TruncatedMean>>,
    parts: Option<crate::system::StateParts<I>>,
    oracle_calls: u64,
    fell_back: bool,
    stage1_len: usize,
    outcome: Option<TsGreedyOutcome>,
}

impl<I> TsGreedyStepper<I> {
    /// Prepares a run of `cfg` on `system` (no oracle work yet).
    pub fn new<S: UtilitySystem<Inner = I>>(system: &S, cfg: &TsGreedyConfig) -> Self {
        Self {
            cfg: cfg.clone(),
            sizes: system.group_sizes().to_vec(),
            m: system.num_users(),
            phase: TsGreedyPhase::GreedyF,
            run_f: None,
            saturate_stepper: None,
            sat: None,
            cover: None,
            parts: None,
            oracle_calls: 0,
            fell_back: false,
            stage1_len: 0,
            outcome: None,
        }
    }

    /// Whether the run has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, TsGreedyPhase::Done)
    }

    /// Human-readable name of the current stage.
    pub fn stage(&self) -> &'static str {
        match self.phase {
            TsGreedyPhase::GreedyF => "estimate_f",
            TsGreedyPhase::Saturate => "saturate",
            TsGreedyPhase::Stage1 => "stage1_cover",
            TsGreedyPhase::TopUp => "topup",
            TsGreedyPhase::Done => "done",
        }
    }

    /// Items of the in-progress solution (stage-1 state, or the final
    /// solution once done).
    pub fn current_items(&self) -> Vec<crate::items::ItemId> {
        if let Some(outcome) = &self.outcome {
            return outcome.bsm.items.clone();
        }
        self.parts
            .as_ref()
            .map(|p| p.items().to_vec())
            .unwrap_or_default()
    }

    /// Per-group utility sums of the in-progress solution (empty before
    /// stage 1 starts).
    pub fn current_sums(&self) -> Vec<f64> {
        self.parts
            .as_ref()
            .map(|p| p.group_sums().to_vec())
            .unwrap_or_default()
    }

    /// Oracle calls performed so far: settled stages plus the parked
    /// stage-1 state plus the in-flight inner Saturate run (so per-step
    /// progress metering never freezes through the Saturate phase).
    pub fn oracle_calls(&self) -> u64 {
        if let Some(outcome) = &self.outcome {
            return outcome.bsm.oracle_calls;
        }
        self.oracle_calls
            + self.parts.as_ref().map_or(0, |p| p.oracle_calls())
            + self
                .saturate_stepper
                .as_ref()
                .map_or(0, |s| s.oracle_calls())
    }

    /// The utility objective `f` of the in-progress solution — the
    /// solver's own objective, for anytime progress reporting. Reports
    /// the final evaluation once done, the parked stage-1 state's value
    /// while covering, and `0` before any solution state exists.
    pub fn current_f(&self) -> f64 {
        if let Some(outcome) = &self.outcome {
            return outcome.bsm.eval.f;
        }
        self.parts
            .as_ref()
            .map(|p| p.group_sums().iter().sum::<f64>() / self.m as f64)
            .unwrap_or(0.0)
    }

    fn stage1_greedy_f(&self) -> crate::aggregate::MeanUtility {
        crate::aggregate::MeanUtility::new(self.m)
    }

    /// Performs one unit of work (an estimate stage, one stage-1 cover
    /// round, or the top-up). Returns `true` while more work remains.
    pub fn step<S: UtilitySystem<Inner = I>>(&mut self, system: &S) -> bool {
        match self.phase {
            TsGreedyPhase::GreedyF => {
                // Line 1: greedy on f.
                let f = self.stage1_greedy_f();
                let f_cfg = GreedyConfig {
                    variant: self.cfg.variant.clone(),
                    ..GreedyConfig::lazy(self.cfg.k)
                };
                let run_f = greedy(system, &f, &f_cfg);
                self.oracle_calls += run_f.oracle_calls;
                self.run_f = Some(run_f);
                self.saturate_stepper = Some(super::saturate::SaturateStepper::new(
                    system,
                    &self.cfg.saturate,
                ));
                self.phase = TsGreedyPhase::Saturate;
            }
            TsGreedyPhase::Saturate => {
                // Line 2: Saturate on g, one inner step at a time.
                let inner = self.saturate_stepper.as_mut().expect("set by GreedyF");
                if !inner.step(system) {
                    let sat = self
                        .saturate_stepper
                        .take()
                        .expect("checked above")
                        .into_outcome();
                    self.oracle_calls += sat.oracle_calls;
                    // Lines 3–7: greedy cover on g'_τ (threshold
                    // τ·OPT'_g); a vacuous threshold (τ = 0 or
                    // OPT'_g = 0) makes stage 1 a no-op.
                    let threshold = self.cfg.tau * sat.opt_g_estimate;
                    self.sat = Some(sat);
                    let mut state = SolutionState::new(system);
                    if threshold > 0.0 {
                        let g_tau = TruncatedMean::uniform(&self.sizes, threshold);
                        let cover_cfg =
                            super::cover::cover_config(1.0, self.cfg.k, self.cfg.variant.clone());
                        self.cover = Some(super::greedy::GreedyEngine::new(
                            &mut state, g_tau, cover_cfg,
                        ));
                        self.phase = TsGreedyPhase::Stage1;
                    } else {
                        self.phase = TsGreedyPhase::TopUp;
                    }
                    self.parts = Some(state.into_parts());
                }
            }
            TsGreedyPhase::Stage1 => {
                let mut state = SolutionState::from_parts(
                    system,
                    self.parts.take().expect("stage 1 state parked"),
                );
                let engine = self.cover.as_mut().expect("stage 1 engine parked");
                if !engine.step(&mut state) {
                    let covered = engine.reached_target();
                    self.stage1_len = state.len();
                    // Lines 8–9: fall back to S_g when the cover failed.
                    // (If greedy stalled below size k, submodularity
                    // implies no superset can reach g'_τ = 1 either, so
                    // the fallback is also correct then.)
                    if !covered {
                        self.oracle_calls += state.oracle_calls();
                        let sat = self.sat.as_ref().expect("stage 1 follows saturate");
                        let mut fresh = SolutionState::new(system);
                        fresh.insert_all(&sat.items);
                        self.fell_back = true;
                        self.stage1_len = fresh.len();
                        state = fresh;
                    }
                    self.cover = None;
                    self.phase = TsGreedyPhase::TopUp;
                }
                self.parts = Some(state.into_parts());
            }
            TsGreedyPhase::TopUp => {
                let mut state = SolutionState::from_parts(
                    system,
                    self.parts.take().expect("top-up state parked"),
                );
                let run_f = self.run_f.as_ref().expect("set by GreedyF");
                // Lines 10–15: top up with the greedy-for-f prefix, in
                // greedy order.
                for &v in &run_f.items {
                    if state.len() >= self.cfg.k {
                        break;
                    }
                    state.insert(v);
                }
                // If S_f's items all overlapped (possible when stage 1
                // chose them already), fill with the best remaining items
                // for f to honor |S'| = k.
                if state.len() < self.cfg.k {
                    let f = self.stage1_greedy_f();
                    let fill_cfg = GreedyConfig {
                        variant: self.cfg.variant.clone(),
                        ..GreedyConfig::lazy(self.cfg.k)
                    };
                    let _ = super::greedy::greedy_into(&mut state, &f, &fill_cfg);
                }
                // Zero-gain padding: the paper's greedy runs exactly k
                // argmax rounds, so |S'| = k always; padding with useless
                // items changes neither f nor g (monotone utilities) but
                // honors the size contract.
                if state.len() < self.cfg.k {
                    for v in 0..system.num_items() as crate::items::ItemId {
                        if state.len() >= self.cfg.k {
                            break;
                        }
                        state.insert(v);
                    }
                }

                self.oracle_calls += state.oracle_calls();
                let eval = evaluate_state(&state);
                let sat = self.sat.as_ref().expect("top-up follows saturate");
                self.outcome = Some(TsGreedyOutcome {
                    bsm: BsmOutcome {
                        items: state.items().to_vec(),
                        eval,
                        opt_f_estimate: run_f.value,
                        opt_g_estimate: sat.opt_g_estimate,
                        fell_back: self.fell_back,
                        oracle_calls: self.oracle_calls,
                    },
                    stage1_len: self.stage1_len,
                });
                self.phase = TsGreedyPhase::Done;
            }
            TsGreedyPhase::Done => {}
        }
        !self.is_done()
    }

    /// The finished outcome (call after stepping to completion).
    ///
    /// # Panics
    /// Panics if the run has not finished.
    pub fn into_outcome(self) -> TsGreedyOutcome {
        self.outcome.expect("TsGreedyStepper stepped to completion")
    }

    /// Borrowed view of the finished outcome, if done.
    pub fn outcome(&self) -> Option<&TsGreedyOutcome> {
        self.outcome.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemExt;
    use crate::toy;

    /// Example 4.1 of the paper, τ = 0.2: stage 1 picks v3 (g'({v3}) = 1),
    /// stage 2 adds v1 (first item of S_f); result {v1, v3}.
    #[test]
    fn figure1_tau_02_returns_v1_v3() {
        let sys = toy::figure1();
        let out = bsm_tsgreedy_detailed(&sys, &TsGreedyConfig::new(2, 0.2));
        let mut items = out.bsm.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 2]);
        assert_eq!(out.stage1_len, 1);
        assert!(!out.bsm.fell_back);
        assert!((out.bsm.eval.f - 8.0 / 12.0).abs() < 1e-12);
    }

    /// Example 4.1, τ = 0.5: stage 1 picks v3 then v1 or v2; the solution
    /// stays feasible for the weak constraint g ≥ τ·OPT'_g.
    #[test]
    fn figure1_tau_05_is_weakly_feasible() {
        let sys = toy::figure1();
        let out = bsm_tsgreedy(&sys, &TsGreedyConfig::new(2, 0.5));
        assert_eq!(out.items.len(), 2);
        assert!(out.eval.g + 1e-9 >= 0.5 * out.opt_g_estimate);
    }

    /// Example 4.1, τ = 0.8: no 2-set built by stage 1 covers g'_0.8, so
    /// the algorithm falls back to S_g = {v1, v4}.
    #[test]
    fn figure1_tau_08_falls_back_to_sg() {
        let sys = toy::figure1();
        let out = bsm_tsgreedy(&sys, &TsGreedyConfig::new(2, 0.8));
        let mut items = out.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 3]);
        assert!(out.fell_back);
        assert!((out.eval.g - 5.0 / 9.0).abs() < 1e-9);
    }

    /// τ = 0 reduces BSM to plain submodular maximization: S12 = {v1, v2}.
    #[test]
    fn tau_zero_matches_plain_greedy() {
        let sys = toy::figure1();
        let out = bsm_tsgreedy(&sys, &TsGreedyConfig::new(2, 0.0));
        assert_eq!(out.items, vec![0, 1]);
        assert!((out.eval.f - 0.75).abs() < 1e-12);
    }

    #[test]
    fn always_returns_k_items_and_weak_feasibility() {
        for seed in 1..6u64 {
            let sys = toy::random_coverage(25, 75, 3, 0.1, seed);
            for tau in [0.1, 0.4, 0.7, 0.9] {
                let cfg = TsGreedyConfig::new(5, tau);
                let out = bsm_tsgreedy(&sys, &cfg);
                assert_eq!(out.items.len(), 5, "seed {seed} tau {tau}");
                // Weak constraint g(S) ≥ τ·OPT'_g (exact oracle ⇒ always).
                assert!(
                    out.eval.g + 1e-9 >= tau * out.opt_g_estimate,
                    "seed {seed} tau {tau}: g {} < τ·OPT'_g {}",
                    out.eval.g,
                    tau * out.opt_g_estimate
                );
            }
        }
    }

    #[test]
    fn utility_never_exceeds_unconstrained_greedy_substantially() {
        let sys = toy::random_coverage(20, 60, 2, 0.12, 9);
        let unconstrained = {
            let f = crate::aggregate::MeanUtility::new(sys.num_users());
            greedy(&sys, &f, &GreedyConfig::lazy(4)).value
        };
        let out = bsm_tsgreedy(&sys, &TsGreedyConfig::new(4, 0.8));
        // Not an approximation claim — sanity: f(S') is bounded by f(V).
        assert!(out.eval.f <= sys.eval_f(&(0..20).collect::<Vec<_>>()) + 1e-12);
        assert!(out.eval.f <= 1.0 + 1e-12);
        let _ = unconstrained;
    }
}
