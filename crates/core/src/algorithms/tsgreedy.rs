//! **BSM-TSGreedy** — the two-stage greedy algorithm for BSM
//! (Algorithm 1 of the paper).
//!
//! Stage 0 computes the ingredient estimates: `S_f, OPT'_f` by greedy on
//! `f` and `S_g, OPT'_g` by Saturate on `g`. Stage 1 greedily covers
//! `g'_τ(S) = (1/c) Σ_i min{1, f_i(S)/(τ·OPT'_g)}` up to value 1 (at most
//! `k` items); if that fails at size `k`, the solution is replaced by
//! `S_g` (which satisfies `g'_τ(S_g) = 1` by construction, lines 8–9).
//! Stage 2 tops the solution up to size `k` with the greedy-for-`f`
//! prefix, in greedy order (lines 10–15).
//!
//! Guarantee (Theorem 4.2): a
//! `(1 − e^{−k'/k}, 1 − ε_g)`-approximate size-`k` solution, where `k'`
//! is the number of stage-2 items.

use crate::aggregate::TruncatedMean;
use crate::metrics::evaluate_state;
use crate::system::{SolutionState, UtilitySystem};

use super::cover::submodular_cover_into;
use super::greedy::{greedy, GreedyConfig, GreedyVariant};
use super::saturate::{saturate, SaturateConfig};
use super::BsmOutcome;

/// Configuration for [`bsm_tsgreedy`].
#[derive(Clone, Debug)]
pub struct TsGreedyConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Balance factor `τ ∈ \[0, 1\]`.
    pub tau: f64,
    /// Greedy evaluation strategy (lazy-forward by default, as in the
    /// paper's experiments).
    pub variant: GreedyVariant,
    /// Saturate configuration for estimating `OPT'_g` / computing `S_g`.
    pub saturate: SaturateConfig,
}

impl TsGreedyConfig {
    /// Paper defaults for a `(k, τ)` instance.
    pub fn new(k: usize, tau: f64) -> Self {
        assert!((0.0..=1.0).contains(&tau), "τ must lie in [0, 1]");
        Self {
            k,
            tau,
            variant: GreedyVariant::Lazy,
            saturate: SaturateConfig::new(k),
        }
    }
}

/// Detailed result of a [`bsm_tsgreedy`] run.
#[derive(Clone, Debug)]
pub struct TsGreedyOutcome {
    /// The BSM outcome (items, evaluation, estimates, fallback flag).
    pub bsm: BsmOutcome,
    /// Number of items chosen in stage 1 (cover on `g'_τ`); `k'` of
    /// Theorem 4.2 equals `k − stage1_len` when no fallback occurred.
    pub stage1_len: usize,
}

/// Runs BSM-TSGreedy (Algorithm 1 of the paper).
///
/// ```
/// use fair_submod_core::prelude::*;
/// use fair_submod_core::toy;
///
/// let system = toy::figure1();
/// // τ = 0.2: stage 1 covers g'_τ with v3, stage 2 tops up with v1.
/// let out = bsm_tsgreedy(&system, &TsGreedyConfig::new(2, 0.2));
/// let mut items = out.items.clone();
/// items.sort();
/// assert_eq!(items, vec![0, 2]);
/// assert!(out.eval.g >= 0.2 * out.opt_g_estimate);
/// ```
pub fn bsm_tsgreedy<S: UtilitySystem>(system: &S, cfg: &TsGreedyConfig) -> BsmOutcome {
    bsm_tsgreedy_detailed(system, cfg).bsm
}

/// Runs BSM-TSGreedy and additionally reports stage sizes.
pub fn bsm_tsgreedy_detailed<S: UtilitySystem>(
    system: &S,
    cfg: &TsGreedyConfig,
) -> TsGreedyOutcome {
    let sizes = system.group_sizes().to_vec();
    let mut oracle_calls = 0u64;

    // Line 1: greedy on f.
    let f = crate::aggregate::MeanUtility::new(system.num_users());
    let f_cfg = GreedyConfig {
        variant: cfg.variant.clone(),
        ..GreedyConfig::lazy(cfg.k)
    };
    let run_f = greedy(system, &f, &f_cfg);
    oracle_calls += run_f.oracle_calls;
    let opt_f_estimate = run_f.value;

    // Line 2: Saturate on g.
    let sat = saturate(system, &cfg.saturate);
    oracle_calls += sat.oracle_calls;
    let opt_g_estimate = sat.opt_g_estimate;

    // Lines 3–7: greedy cover on g'_τ (threshold τ·OPT'_g); a vacuous
    // threshold (τ = 0 or OPT'_g = 0) makes stage 1 a no-op.
    let threshold = cfg.tau * opt_g_estimate;
    let mut state = SolutionState::new(system);
    let mut fell_back = false;
    let mut stage1_len = 0usize;
    if threshold > 0.0 {
        let g_tau = TruncatedMean::uniform(&sizes, threshold);
        let cover = submodular_cover_into(&mut state, &g_tau, 1.0, cfg.k, cfg.variant.clone());
        stage1_len = state.len();
        // Lines 8–9: fall back to S_g when the cover failed. (If greedy
        // stalled below size k, submodularity implies no superset can
        // reach g'_τ = 1 either, so the fallback is also correct then.)
        if !cover.covered {
            oracle_calls += state.oracle_calls();
            state = SolutionState::new(system);
            state.insert_all(&sat.items);
            fell_back = true;
            stage1_len = state.len();
        }
    }

    // Lines 10–15: top up with the greedy-for-f prefix, in greedy order.
    for &v in &run_f.items {
        if state.len() >= cfg.k {
            break;
        }
        state.insert(v);
    }
    // If S_f's items all overlapped (possible when stage 1 chose them
    // already), fill with the best remaining items for f to honor |S'| = k.
    if state.len() < cfg.k {
        let fill_cfg = GreedyConfig {
            variant: cfg.variant.clone(),
            ..GreedyConfig::lazy(cfg.k)
        };
        let _ = super::greedy::greedy_into(&mut state, &f, &fill_cfg);
    }
    // Zero-gain padding: the paper's greedy runs exactly k argmax rounds,
    // so |S'| = k always; padding with useless items changes neither f
    // nor g (monotone utilities) but honors the size contract.
    if state.len() < cfg.k {
        for v in 0..system.num_items() as crate::items::ItemId {
            if state.len() >= cfg.k {
                break;
            }
            state.insert(v);
        }
    }

    oracle_calls += state.oracle_calls();
    let eval = evaluate_state(&state);
    TsGreedyOutcome {
        bsm: BsmOutcome {
            items: state.items().to_vec(),
            eval,
            opt_f_estimate,
            opt_g_estimate,
            fell_back,
            oracle_calls,
        },
        stage1_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemExt;
    use crate::toy;

    /// Example 4.1 of the paper, τ = 0.2: stage 1 picks v3 (g'({v3}) = 1),
    /// stage 2 adds v1 (first item of S_f); result {v1, v3}.
    #[test]
    fn figure1_tau_02_returns_v1_v3() {
        let sys = toy::figure1();
        let out = bsm_tsgreedy_detailed(&sys, &TsGreedyConfig::new(2, 0.2));
        let mut items = out.bsm.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 2]);
        assert_eq!(out.stage1_len, 1);
        assert!(!out.bsm.fell_back);
        assert!((out.bsm.eval.f - 8.0 / 12.0).abs() < 1e-12);
    }

    /// Example 4.1, τ = 0.5: stage 1 picks v3 then v1 or v2; the solution
    /// stays feasible for the weak constraint g ≥ τ·OPT'_g.
    #[test]
    fn figure1_tau_05_is_weakly_feasible() {
        let sys = toy::figure1();
        let out = bsm_tsgreedy(&sys, &TsGreedyConfig::new(2, 0.5));
        assert_eq!(out.items.len(), 2);
        assert!(out.eval.g + 1e-9 >= 0.5 * out.opt_g_estimate);
    }

    /// Example 4.1, τ = 0.8: no 2-set built by stage 1 covers g'_0.8, so
    /// the algorithm falls back to S_g = {v1, v4}.
    #[test]
    fn figure1_tau_08_falls_back_to_sg() {
        let sys = toy::figure1();
        let out = bsm_tsgreedy(&sys, &TsGreedyConfig::new(2, 0.8));
        let mut items = out.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 3]);
        assert!(out.fell_back);
        assert!((out.eval.g - 5.0 / 9.0).abs() < 1e-9);
    }

    /// τ = 0 reduces BSM to plain submodular maximization: S12 = {v1, v2}.
    #[test]
    fn tau_zero_matches_plain_greedy() {
        let sys = toy::figure1();
        let out = bsm_tsgreedy(&sys, &TsGreedyConfig::new(2, 0.0));
        assert_eq!(out.items, vec![0, 1]);
        assert!((out.eval.f - 0.75).abs() < 1e-12);
    }

    #[test]
    fn always_returns_k_items_and_weak_feasibility() {
        for seed in 1..6u64 {
            let sys = toy::random_coverage(25, 75, 3, 0.1, seed);
            for tau in [0.1, 0.4, 0.7, 0.9] {
                let cfg = TsGreedyConfig::new(5, tau);
                let out = bsm_tsgreedy(&sys, &cfg);
                assert_eq!(out.items.len(), 5, "seed {seed} tau {tau}");
                // Weak constraint g(S) ≥ τ·OPT'_g (exact oracle ⇒ always).
                assert!(
                    out.eval.g + 1e-9 >= tau * out.opt_g_estimate,
                    "seed {seed} tau {tau}: g {} < τ·OPT'_g {}",
                    out.eval.g,
                    tau * out.opt_g_estimate
                );
            }
        }
    }

    #[test]
    fn utility_never_exceeds_unconstrained_greedy_substantially() {
        let sys = toy::random_coverage(20, 60, 2, 0.12, 9);
        let unconstrained = {
            let f = crate::aggregate::MeanUtility::new(sys.num_users());
            greedy(&sys, &f, &GreedyConfig::lazy(4)).value
        };
        let out = bsm_tsgreedy(&sys, &TsGreedyConfig::new(4, 0.8));
        // Not an approximation claim — sanity: f(S') is bounded by f(V).
        assert!(out.eval.f <= sys.eval_f(&(0..20).collect::<Vec<_>>()) + 1e-12);
        assert!(out.eval.f <= 1.0 + 1e-12);
        let _ = unconstrained;
    }
}
