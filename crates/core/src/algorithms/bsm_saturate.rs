//! **BSM-Saturate** — the improved algorithm for BSM (Algorithm 2 of the
//! paper).
//!
//! Bisects on the utility factor `α ∈ \[0, 1\]`. For each probe it greedily
//! maximizes the combined objective (Lemma 4.4)
//!
//! ```text
//! F'_α(S) = min{1, f(S)/(α·OPT'_f)} + (1/c) Σ_i min{1, f_i(S)/(τ·OPT'_g)}
//! ```
//!
//! with a solution-size budget, and declares `α` feasible when the greedy
//! solution reaches `F'_α(S) ≥ 2(1 − ε/c)`. The search keeps the solution
//! of the largest feasible `α`.
//!
//! Guarantee (Theorem 4.5): with budget `k·ln(c/ε)` the result is a
//! `((1−3ε−ε_f)·α*, 1−2ε−ε_g)`-approximate solution where `α*` is the
//! instance's best achievable factor. The paper's experiments substitute
//! budget `k` for comparability; [`BsmSaturateConfig::size_cap`] selects
//! between the two.
//!
//! When *no* probed `α` is feasible at the chosen budget (possible at
//! `budget = k` with large `τ`), the paper leaves the behavior
//! unspecified; we return the Saturate solution `S_g`, mirroring
//! TSGreedy's fallback, and flag it via [`super::BsmOutcome::fell_back`].

use crate::aggregate::{BsmObjective, MeanUtility};
use crate::metrics::evaluate;
use crate::system::UtilitySystem;

use super::greedy::{greedy, GreedyConfig, GreedyVariant};
use super::saturate::SaturateConfig;
use super::BsmOutcome;

/// Solution-size budget for the per-`α` greedy runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SizeCap {
    /// Budget `k` — the paper's experimental setting (size-`k` output).
    Exact,
    /// Budget `⌈k·ln(c/ε)⌉` — the theoretical setting of Theorem 4.5.
    Theory,
}

/// Configuration for [`bsm_saturate`].
#[derive(Clone, Debug)]
pub struct BsmSaturateConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Balance factor `τ ∈ \[0, 1\]`.
    pub tau: f64,
    /// Error parameter `ε ∈ (0, 1)`; the paper uses 0.05 throughout.
    pub epsilon: f64,
    /// Greedy-budget policy (paper experiments: [`SizeCap::Exact`]).
    pub size_cap: SizeCap,
    /// Greedy evaluation strategy.
    pub variant: GreedyVariant,
    /// Saturate configuration for `OPT'_g`.
    pub saturate: SaturateConfig,
    /// Hard cap on bisection rounds (the loop provably needs
    /// `O(log(1/(α*ε)))`, this is a safety net).
    pub max_rounds: usize,
}

impl BsmSaturateConfig {
    /// Paper defaults for a `(k, τ)` instance: `ε = 0.05`, size cap `k`,
    /// lazy-forward greedy.
    pub fn new(k: usize, tau: f64) -> Self {
        assert!((0.0..=1.0).contains(&tau), "τ must lie in [0, 1]");
        Self {
            k,
            tau,
            epsilon: 0.05,
            size_cap: SizeCap::Exact,
            variant: GreedyVariant::Lazy,
            saturate: SaturateConfig::new(k),
            max_rounds: 64,
        }
    }

    /// Sets the error parameter `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "ε must lie in (0, 1)");
        self.epsilon = epsilon;
        self
    }

    fn budget(&self, c: usize) -> usize {
        match self.size_cap {
            SizeCap::Exact => self.k,
            SizeCap::Theory => {
                let blow = ((c.max(2)) as f64 / self.epsilon).ln().max(1.0);
                ((self.k as f64) * blow).ceil() as usize
            }
        }
    }
}

/// Detailed result of [`bsm_saturate`].
#[derive(Clone, Debug)]
pub struct BsmSaturateOutcome {
    /// The BSM outcome.
    pub bsm: BsmOutcome,
    /// Final lower bound `α_min` of the bisection (0 if never feasible).
    pub alpha_min: f64,
    /// Final upper bound `α_max`.
    pub alpha_max: f64,
    /// Bisection rounds performed.
    pub rounds: usize,
}

/// Runs BSM-Saturate (Algorithm 2 of the paper).
///
/// ```
/// use fair_submod_core::prelude::*;
/// use fair_submod_core::toy;
///
/// let system = toy::figure1();
/// // τ = 0.8 forces the fair solution {v1, v4} (Example 4.6).
/// let cfg = BsmSaturateConfig::new(2, 0.8).with_epsilon(0.1);
/// let out = bsm_saturate(&system, &cfg);
/// let mut items = out.items.clone();
/// items.sort();
/// assert_eq!(items, vec![0, 3]);
/// ```
pub fn bsm_saturate<S: UtilitySystem>(system: &S, cfg: &BsmSaturateConfig) -> BsmOutcome {
    bsm_saturate_detailed(system, cfg).bsm
}

/// Runs BSM-Saturate and additionally reports the bisection bounds.
///
/// Thin driver over [`BsmSaturateStepper`]: steps the state machine to
/// completion, so one-shot calls and resumable sessions run the exact
/// same code and produce bit-identical outcomes.
pub fn bsm_saturate_detailed<S: UtilitySystem>(
    system: &S,
    cfg: &BsmSaturateConfig,
) -> BsmSaturateOutcome {
    let mut stepper = BsmSaturateStepper::new(system, cfg);
    while stepper.step(system) {}
    stepper.into_outcome()
}

enum BsmSaturatePhase {
    /// Line 1: greedy on `f` for `OPT'_f` (one step).
    GreedyF,
    /// Line 2: Saturate on `g` — one inner Saturate step per step.
    Saturate,
    /// Lines 3–14: one α feasibility probe per step.
    Bisect,
    /// Finished; the outcome is ready.
    Done,
}

/// BSM-Saturate as a resumable state machine: one ingredient estimate or
/// α-bisection probe per [`BsmSaturateStepper::step`].
///
/// The inner Saturate run advances through its own
/// [`SaturateStepper`](super::saturate::SaturateStepper), and each α
/// probe is a greedy run on the combined
/// objective — both exactly the operations of the historical
/// run-to-completion function, cut at round boundaries, so stepping to
/// completion is bit-identical to [`bsm_saturate_detailed`] (which is
/// itself implemented over this stepper). Every `step` call must receive
/// the same `system` the stepper was created with.
pub struct BsmSaturateStepper {
    cfg: BsmSaturateConfig,
    sizes: Vec<usize>,
    m: usize,
    phase: BsmSaturatePhase,
    saturate: Option<super::saturate::SaturateStepper>,
    sat: Option<super::saturate::SaturateOutcome>,
    opt_f_estimate: f64,
    alpha_min: f64,
    alpha_max: f64,
    rounds: usize,
    best: Option<Vec<crate::items::ItemId>>,
    oracle_calls: u64,
    outcome: Option<BsmSaturateOutcome>,
}

impl BsmSaturateStepper {
    /// Prepares a run of `cfg` on `system` (no oracle work yet).
    pub fn new<S: UtilitySystem>(system: &S, cfg: &BsmSaturateConfig) -> Self {
        Self {
            cfg: cfg.clone(),
            sizes: system.group_sizes().to_vec(),
            m: system.num_users(),
            phase: BsmSaturatePhase::GreedyF,
            saturate: None,
            sat: None,
            opt_f_estimate: 0.0,
            alpha_min: 0.0,
            alpha_max: 1.0,
            rounds: 0,
            best: None,
            oracle_calls: 0,
            outcome: None,
        }
    }

    /// Whether the run has finished.
    pub fn is_done(&self) -> bool {
        matches!(self.phase, BsmSaturatePhase::Done)
    }

    /// α-bisection probes performed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Current bisection bounds `(α_min, α_max)`.
    pub fn alpha_bounds(&self) -> (f64, f64) {
        (self.alpha_min, self.alpha_max)
    }

    /// Items of the best feasible probe so far (empty before one
    /// succeeds).
    pub fn best_items(&self) -> &[crate::items::ItemId] {
        self.best.as_deref().unwrap_or(&[])
    }

    /// Oracle calls performed so far, including the in-flight inner
    /// Saturate run (so per-step progress metering never freezes
    /// through the Saturate phase).
    pub fn oracle_calls(&self) -> u64 {
        self.oracle_calls + self.saturate.as_ref().map_or(0, |s| s.oracle_calls())
    }

    /// Performs one unit of work (the greedy-on-`f` estimate, one inner
    /// Saturate step, or one α probe). Returns `true` while more work
    /// remains.
    pub fn step<S: UtilitySystem>(&mut self, system: &S) -> bool {
        match self.phase {
            BsmSaturatePhase::GreedyF => {
                // Line 1: greedy on f for OPT'_f.
                let f = MeanUtility::new(self.m);
                let f_cfg = GreedyConfig {
                    variant: self.cfg.variant.clone(),
                    ..GreedyConfig::lazy(self.cfg.k)
                };
                let run_f = greedy(system, &f, &f_cfg);
                self.oracle_calls += run_f.oracle_calls;
                self.opt_f_estimate = run_f.value;
                self.saturate = Some(super::saturate::SaturateStepper::new(
                    system,
                    &self.cfg.saturate,
                ));
                self.phase = BsmSaturatePhase::Saturate;
            }
            BsmSaturatePhase::Saturate => {
                // Line 2: Saturate on g for OPT'_g, one inner step at a
                // time.
                let inner = self.saturate.as_mut().expect("set by GreedyF");
                if !inner.step(system) {
                    let sat = self.saturate.take().expect("checked above").into_outcome();
                    self.oracle_calls += sat.oracle_calls;
                    self.sat = Some(sat);
                    self.phase = BsmSaturatePhase::Bisect;
                }
            }
            BsmSaturatePhase::Bisect => {
                // Lines 3–14: bisection on α.
                if (1.0 - self.cfg.epsilon) * self.alpha_max > self.alpha_min
                    && self.rounds < self.cfg.max_rounds
                {
                    self.probe(system);
                } else {
                    self.finalize(system);
                }
            }
            BsmSaturatePhase::Done => {}
        }
        !self.is_done()
    }

    /// One α feasibility probe at the current midpoint.
    fn probe<S: UtilitySystem>(&mut self, system: &S) {
        let c = self.sizes.len();
        let sat = self.sat.as_ref().expect("bisect follows saturate");
        let tau_opt_g = self.cfg.tau * sat.opt_g_estimate;
        let budget = self.cfg.budget(c);
        let threshold = 2.0 * (1.0 - self.cfg.epsilon / c as f64);
        self.rounds += 1;
        let alpha = 0.5 * (self.alpha_max + self.alpha_min);
        let objective =
            BsmObjective::new(self.m, &self.sizes, alpha * self.opt_f_estimate, tau_opt_g);
        // Paper's Algorithm 2 line 8: the greedy loop always runs the
        // full budget; the threshold is only checked afterwards (line
        // 11). Early-stopping at the threshold would shrink solutions
        // (hurting f) as ε grows — exactly what Figure 9 shows does NOT
        // happen.
        let run = greedy(
            system,
            &objective,
            &GreedyConfig {
                variant: self.cfg.variant.clone(),
                ..GreedyConfig::lazy(budget)
            },
        );
        self.oracle_calls += run.oracle_calls;
        if run.value + 1e-12 >= threshold {
            self.alpha_min = alpha;
            self.best = Some(run.items);
        } else {
            self.alpha_max = alpha;
        }
    }

    fn finalize<S: UtilitySystem>(&mut self, system: &S) {
        let sat = self.sat.as_ref().expect("bisect follows saturate");
        let (items, fell_back) = match self.best.clone() {
            Some(items) => (items, false),
            // Unspecified in the paper: fall back to S_g (see module
            // docs).
            None => (sat.items.clone(), true),
        };
        let eval = evaluate(system, &items);
        self.outcome = Some(BsmSaturateOutcome {
            bsm: BsmOutcome {
                items,
                eval,
                opt_f_estimate: self.opt_f_estimate,
                opt_g_estimate: sat.opt_g_estimate,
                fell_back,
                oracle_calls: self.oracle_calls,
            },
            alpha_min: self.alpha_min,
            alpha_max: self.alpha_max,
            rounds: self.rounds,
        });
        self.phase = BsmSaturatePhase::Done;
    }

    /// The finished outcome (call after stepping to completion).
    ///
    /// # Panics
    /// Panics if the run has not finished.
    pub fn into_outcome(self) -> BsmSaturateOutcome {
        self.outcome
            .expect("BsmSaturateStepper stepped to completion")
    }

    /// Borrowed view of the finished outcome, if done.
    pub fn outcome(&self) -> Option<&BsmSaturateOutcome> {
        self.outcome.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    /// Example 4.6, τ = 0.2 and τ = 0.5 (ε = 0.1, size cap k): the
    /// bisection terminates with Ŝ = {v1, v3}.
    #[test]
    fn figure1_low_tau_returns_v1_v3() {
        let sys = toy::figure1();
        for tau in [0.2, 0.5] {
            let cfg = BsmSaturateConfig::new(2, tau).with_epsilon(0.1);
            let out = bsm_saturate_detailed(&sys, &cfg);
            let mut items = out.bsm.items.clone();
            items.sort_unstable();
            assert_eq!(items, vec![0, 2], "tau {tau}");
            assert!(out.alpha_min > 0.9, "tau {tau}: α_min = {}", out.alpha_min);
        }
    }

    /// Example 4.6, τ = 0.8: the bisection settles on α ≈ 0.8125 with
    /// Ŝ = {v1, v4}.
    #[test]
    fn figure1_tau_08_returns_v1_v4() {
        let sys = toy::figure1();
        let cfg = BsmSaturateConfig::new(2, 0.8).with_epsilon(0.1);
        let out = bsm_saturate_detailed(&sys, &cfg);
        let mut items = out.bsm.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 3]);
        assert!((out.bsm.eval.g - 5.0 / 9.0).abs() < 1e-9);
        assert!(out.alpha_min >= 0.75 && out.alpha_min <= 0.875);
    }

    #[test]
    fn weak_constraint_holds_on_exact_oracles() {
        for seed in 1..6u64 {
            let sys = toy::random_coverage(25, 75, 3, 0.1, seed);
            for tau in [0.2, 0.5, 0.8] {
                let cfg = BsmSaturateConfig::new(5, tau);
                let out = bsm_saturate(&sys, &cfg);
                assert!(out.items.len() <= 5);
                // ε-relaxed weak constraint: per Lemma 4.4 the fairness
                // part only certifies g ≥ (1−2ε)·τ·OPT'_g.
                let slack = (1.0 - 2.0 * cfg.epsilon) * tau * out.opt_g_estimate;
                assert!(
                    out.eval.g + 1e-9 >= slack,
                    "seed {seed} tau {tau}: g {} < {}",
                    out.eval.g,
                    slack
                );
            }
        }
    }

    #[test]
    fn theory_cap_allows_larger_solutions() {
        let sys = toy::random_coverage(40, 80, 4, 0.05, 2);
        let mut cfg = BsmSaturateConfig::new(4, 0.9);
        cfg.size_cap = SizeCap::Theory;
        let out = bsm_saturate(&sys, &cfg);
        let budget = cfg.budget(4);
        assert!(budget > 4);
        assert!(out.items.len() <= budget);
        // A larger budget can only help the combined objective.
        let exact_cfg = BsmSaturateConfig::new(4, 0.9);
        let exact_out = bsm_saturate(&sys, &exact_cfg);
        assert!(out.eval.g + 1e-9 >= exact_out.eval.g * 0.999);
    }

    #[test]
    fn bisection_rounds_are_logarithmic() {
        let sys = toy::figure1();
        let cfg = BsmSaturateConfig::new(2, 0.5).with_epsilon(0.05);
        let out = bsm_saturate_detailed(&sys, &cfg);
        // (1-ε)·α_max ≤ α_min at termination ⇒ ~log2(1/ε) rounds.
        assert!(out.rounds <= 20);
        assert!((1.0 - cfg.epsilon) * out.alpha_max <= out.alpha_min + 1e-12);
    }
}
