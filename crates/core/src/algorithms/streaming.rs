//! Sieve-Streaming for cardinality-constrained monotone submodular
//! maximization (Badanidiyuru et al., KDD 2014) — the single-pass
//! streaming setting the paper cites as related work \[3\].
//!
//! The algorithm guesses `OPT` on a geometric grid
//! `{(1+ε)^j} ∩ [Δ, k·Δ]` (where `Δ` is the best singleton value seen so
//! far), keeps one candidate solution per guess, and adds an arriving
//! item to a candidate whenever its marginal gain is at least
//! `(v/2 − value)/(k − |S|)`. Guarantee: `(1/2 − ε)·OPT` in one pass with
//! `O((k/ε)·log k)` memory.
//!
//! Usefulness here: a low-memory drop-in for the greedy-for-`f`
//! subroutine of the BSM schemes when items arrive as a stream, and an
//! independently-implemented cross-check of the greedy engines.
//!
//! The pass itself lives in `SieveCore`, a per-arrival stepper: one
//! `step` processes one arriving item against the whole candidate grid.
//! [`sieve_streaming`] drives the core to exhaustion; the native
//! `SolveSession` in `crate::engine::session` drives the *same* core one
//! arrival at a time, which is what makes session-vs-one-shot
//! bit-identity (DESIGN.md §7) a structural fact rather than a test
//! coincidence.

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, StateParts, UtilitySystem};

use super::InvalidConfig;

/// Configuration for [`sieve_streaming`].
#[derive(Clone, Debug)]
pub struct SieveConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Grid resolution `ε ∈ (0, 1)`.
    pub epsilon: f64,
}

impl SieveConfig {
    /// Default `ε = 0.1`.
    pub fn new(k: usize) -> Self {
        Self { k, epsilon: 0.1 }
    }

    /// Checks the config's numeric domain (`ε ∈ (0, 1)`).
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        if self.epsilon > 0.0 && self.epsilon < 1.0 {
            Ok(())
        } else {
            Err(InvalidConfig::new(
                "sieve_streaming",
                format!("epsilon must lie in (0, 1), got {}", self.epsilon),
            ))
        }
    }
}

/// Result of a [`sieve_streaming`] pass.
#[derive(Clone, Debug)]
pub struct SieveOutcome {
    /// Best candidate solution across all threshold guesses.
    pub items: Vec<ItemId>,
    /// Its aggregate value.
    pub value: f64,
    /// Number of threshold candidates materialized over the pass.
    pub candidates: usize,
    /// Total oracle calls.
    pub oracle_calls: u64,
}

/// One candidate solution of the OPT-guess grid, parked between
/// arrivals.
struct SieveCandidate<I> {
    /// Grid exponent `j`: this candidate's guess is `(1+ε)^j`.
    exponent: i32,
    /// Its solution state with the system borrow stripped.
    parts: Option<StateParts<I>>,
    /// Its current aggregate value (cached so the final argmax and the
    /// acceptance threshold need no oracle).
    value: f64,
}

/// The Sieve-Streaming pass as a per-arrival stepper.
///
/// Holds the probe state (Δ tracking), the live candidate grid, and the
/// arrival cursor with the system borrow stripped ([`StateParts`]), so a
/// `'static` session object can own it and rehydrate against whatever
/// system reference each step receives. Every oracle-visible action —
/// gain probes, grid retention, candidate creation order, acceptance
/// thresholds, call accounting — is performed by this type alone;
/// [`sieve_streaming`] and the native session are both thin drivers, so
/// they cannot disagree.
pub(crate) struct SieveCore<I> {
    k: usize,
    base: f64,
    n: usize,
    next: ItemId,
    /// Best singleton value seen so far (Δ).
    delta: f64,
    probe: Option<StateParts<I>>,
    candidates: Vec<SieveCandidate<I>>,
    /// Candidates ever materialized (including later-retired ones).
    ever: usize,
}

impl<I: Clone> SieveCore<I> {
    /// Fresh pass over `0..system.num_items()`. The config must already
    /// be validated.
    pub(crate) fn new<S: UtilitySystem<Inner = I>>(system: &S, cfg: &SieveConfig) -> Self {
        Self {
            k: cfg.k.max(1),
            base: 1.0 + cfg.epsilon,
            n: system.num_items(),
            next: 0,
            delta: 0.0,
            probe: Some(SolutionState::new(system).into_parts()),
            candidates: Vec::new(),
            ever: 0,
        }
    }

    /// Whether every item of the stream has arrived.
    pub(crate) fn done(&self) -> bool {
        (self.next as usize) >= self.n
    }

    /// Processes the next arriving item against the candidate grid.
    /// A no-op once the pass is done.
    pub(crate) fn step<S, A>(&mut self, system: &S, aggregate: &A)
    where
        S: UtilitySystem<Inner = I>,
        A: Aggregate,
    {
        if self.done() {
            return;
        }
        let v = self.next;
        self.next += 1;
        let k = self.k;
        let base = self.base;

        // Track Δ = max singleton value.
        let mut probe = SolutionState::from_parts(system, self.probe.take().expect("probe parked"));
        let singleton = probe.gain(aggregate, v);
        self.probe = Some(probe.into_parts());
        if singleton > self.delta {
            self.delta = singleton;
            // Re-derive the live grid: exponents j with
            // Δ ≤ (1+ε)^j ≤ 2kΔ (the textbook window).
            let lo = (self.delta.ln() / base.ln()).floor() as i32;
            let hi = ((2.0 * k as f64 * self.delta).ln() / base.ln()).ceil() as i32;
            self.candidates
                .retain(|c| c.exponent >= lo && c.exponent <= hi);
            for j in lo..=hi {
                if self.candidates.iter().all(|c| c.exponent != j) {
                    self.candidates.push(SieveCandidate {
                        exponent: j,
                        parts: Some(SolutionState::new(system).into_parts()),
                        value: 0.0,
                    });
                    self.ever += 1;
                }
            }
        }
        // Offer v to every candidate.
        for cand in self.candidates.iter_mut() {
            let mut state =
                SolutionState::from_parts(system, cand.parts.take().expect("candidate parked"));
            if state.len() >= k {
                cand.parts = Some(state.into_parts());
                continue;
            }
            let guess = base.powi(cand.exponent);
            let threshold = (guess / 2.0 - cand.value) / (k - state.len()) as f64;
            let gain = state.gain(aggregate, v);
            if gain >= threshold && gain > 1e-15 {
                state.insert(v);
                cand.value = state.value(aggregate);
            }
            cand.parts = Some(state.into_parts());
        }
    }

    /// The outcome as of the arrivals processed so far: best candidate
    /// by cached value, oracle calls of the probe plus the *live* grid
    /// (retired candidates take their counts with them — the historical
    /// accounting of this pass, kept so every driver reports the same
    /// totals).
    pub(crate) fn outcome(&self) -> SieveOutcome {
        let mut oracle_calls = self.probe.as_ref().expect("probe parked").oracle_calls();
        let mut best_items = Vec::new();
        let mut best_value = 0.0;
        for cand in &self.candidates {
            let parts = cand.parts.as_ref().expect("candidate parked");
            oracle_calls += parts.oracle_calls();
            if cand.value > best_value {
                best_value = cand.value;
                best_items = parts.items().to_vec();
            }
        }
        SieveOutcome {
            items: best_items,
            value: best_value,
            candidates: self.ever,
            oracle_calls,
        }
    }
}

/// One pass of Sieve-Streaming over the items `0..n` in index order
/// (callers with a real stream can pre-permute ids).
///
/// Rejects `ε ∉ (0, 1)` with a typed [`InvalidConfig`] instead of
/// asserting: the engine adapter forwards the rejection as a
/// [`crate::engine::SolverError::InvalidParams`], so a bad scenario spec
/// never takes down a grid run.
pub fn sieve_streaming<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    cfg: &SieveConfig,
) -> Result<SieveOutcome, InvalidConfig> {
    cfg.validate()?;
    let mut core = SieveCore::new(system, cfg);
    while !core.done() {
        core.step(system, aggregate);
    }
    Ok(core.outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MeanUtility;
    use crate::algorithms::greedy::{greedy, GreedyConfig};
    use crate::toy;

    #[test]
    fn sieve_achieves_half_of_greedy() {
        for seed in 1..6u64 {
            let sys = toy::random_coverage(40, 120, 3, 0.1, seed);
            let f = MeanUtility::new(sys.num_users());
            let k = 6;
            let gre = greedy(&sys, &f, &GreedyConfig::lazy(k));
            let sieve = sieve_streaming(&sys, &f, &SieveConfig::new(k)).expect("valid config");
            // (1/2 − ε)·OPT ≥ (1/2 − ε)·greedy; use 0.4·greedy as slack.
            assert!(
                sieve.value + 1e-9 >= 0.4 * gre.value,
                "seed {seed}: sieve {} vs greedy {}",
                sieve.value,
                gre.value
            );
            assert!(sieve.items.len() <= k);
        }
    }

    #[test]
    fn sieve_on_figure1_is_sensible() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        let out = sieve_streaming(&sys, &f, &SieveConfig::new(2)).expect("valid config");
        assert!(out.value >= 0.5); // greedy gets 0.75; half is guaranteed
        assert!(out.candidates > 0);
    }

    #[test]
    fn sieve_respects_cardinality() {
        let sys = toy::random_coverage(30, 60, 2, 0.3, 9);
        let f = MeanUtility::new(sys.num_users());
        for k in [1usize, 3, 10] {
            let out = sieve_streaming(&sys, &f, &SieveConfig::new(k)).expect("valid config");
            assert!(out.items.len() <= k, "k = {k}");
        }
    }

    #[test]
    fn tighter_epsilon_never_hurts_much() {
        let sys = toy::random_coverage(50, 100, 2, 0.08, 4);
        let f = MeanUtility::new(sys.num_users());
        let loose =
            sieve_streaming(&sys, &f, &SieveConfig { k: 5, epsilon: 0.5 }).expect("valid config");
        let tight = sieve_streaming(
            &sys,
            &f,
            &SieveConfig {
                k: 5,
                epsilon: 0.05,
            },
        )
        .expect("valid config");
        assert!(tight.value + 0.05 >= loose.value);
        assert!(tight.candidates >= loose.candidates);
    }

    #[test]
    fn bad_epsilon_is_a_typed_rejection() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        for eps in [0.0, 1.0, -0.2, 1.5] {
            let err = sieve_streaming(&sys, &f, &SieveConfig { k: 2, epsilon: eps }).unwrap_err();
            assert_eq!(err.algorithm, "sieve_streaming");
            assert!(err.message.contains("epsilon"), "{}", err.message);
        }
    }

    #[test]
    fn stepped_core_matches_one_shot_driver() {
        let sys = toy::random_coverage(40, 120, 3, 0.1, 2);
        let f = MeanUtility::new(sys.num_users());
        let cfg = SieveConfig::new(5);
        let one_shot = sieve_streaming(&sys, &f, &cfg).expect("valid config");
        let mut core = SieveCore::new(&sys, &cfg);
        let mut steps = 0usize;
        while !core.done() {
            core.step(&sys, &f);
            steps += 1;
        }
        assert_eq!(steps, sys.num_items());
        let stepped = core.outcome();
        assert_eq!(stepped.items, one_shot.items);
        assert_eq!(stepped.value.to_bits(), one_shot.value.to_bits());
        assert_eq!(stepped.candidates, one_shot.candidates);
        assert_eq!(stepped.oracle_calls, one_shot.oracle_calls);
    }
}
