//! Sieve-Streaming for cardinality-constrained monotone submodular
//! maximization (Badanidiyuru et al., KDD 2014) — the single-pass
//! streaming setting the paper cites as related work \[3\].
//!
//! The algorithm guesses `OPT` on a geometric grid
//! `{(1+ε)^j} ∩ [Δ, k·Δ]` (where `Δ` is the best singleton value seen so
//! far), keeps one candidate solution per guess, and adds an arriving
//! item to a candidate whenever its marginal gain is at least
//! `(v/2 − value)/(k − |S|)`. Guarantee: `(1/2 − ε)·OPT` in one pass with
//! `O((k/ε)·log k)` memory.
//!
//! Usefulness here: a low-memory drop-in for the greedy-for-`f`
//! subroutine of the BSM schemes when items arrive as a stream, and an
//! independently-implemented cross-check of the greedy engines.

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

/// Configuration for [`sieve_streaming`].
#[derive(Clone, Debug)]
pub struct SieveConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Grid resolution `ε ∈ (0, 1)`.
    pub epsilon: f64,
}

impl SieveConfig {
    /// Default `ε = 0.1`.
    pub fn new(k: usize) -> Self {
        Self { k, epsilon: 0.1 }
    }
}

/// Result of a [`sieve_streaming`] pass.
#[derive(Clone, Debug)]
pub struct SieveOutcome {
    /// Best candidate solution across all threshold guesses.
    pub items: Vec<ItemId>,
    /// Its aggregate value.
    pub value: f64,
    /// Number of threshold candidates materialized over the pass.
    pub candidates: usize,
    /// Total oracle calls.
    pub oracle_calls: u64,
}

/// One pass of Sieve-Streaming over the items `0..n` in index order
/// (callers with a real stream can pre-permute ids).
pub fn sieve_streaming<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    cfg: &SieveConfig,
) -> SieveOutcome {
    assert!(cfg.epsilon > 0.0 && cfg.epsilon < 1.0);
    let n = system.num_items();
    let k = cfg.k.max(1);
    let base = 1.0 + cfg.epsilon;

    // Candidate per grid exponent j: value (1+ε)^j.
    struct Candidate<'a, S: UtilitySystem> {
        exponent: i32,
        state: SolutionState<'a, S>,
        value: f64,
    }
    let mut candidates: Vec<Candidate<'_, S>> = Vec::new();
    let mut delta = 0.0f64; // best singleton value so far
    let mut probe = SolutionState::new(system);
    let mut oracle_calls = 0u64;
    let mut ever = 0usize;

    for v in 0..n as ItemId {
        // Track Δ = max singleton value.
        let singleton = probe.gain(aggregate, v);
        if singleton > delta {
            delta = singleton;
            // Re-derive the live grid: exponents j with
            // Δ ≤ (1+ε)^j ≤ 2kΔ (the textbook window).
            let lo = (delta.ln() / base.ln()).floor() as i32;
            let hi = ((2.0 * k as f64 * delta).ln() / base.ln()).ceil() as i32;
            candidates.retain(|c| c.exponent >= lo && c.exponent <= hi);
            for j in lo..=hi {
                if candidates.iter().all(|c| c.exponent != j) {
                    candidates.push(Candidate {
                        exponent: j,
                        state: SolutionState::new(system),
                        value: 0.0,
                    });
                    ever += 1;
                }
            }
        }
        // Offer v to every candidate.
        for cand in candidates.iter_mut() {
            if cand.state.len() >= k {
                continue;
            }
            let guess = base.powi(cand.exponent);
            let threshold = (guess / 2.0 - cand.value) / (k - cand.state.len()) as f64;
            let gain = cand.state.gain(aggregate, v);
            if gain >= threshold && gain > 1e-15 {
                cand.state.insert(v);
                cand.value = cand.state.value(aggregate);
            }
        }
    }

    oracle_calls += probe.oracle_calls();
    let mut best_items = Vec::new();
    let mut best_value = 0.0;
    for cand in &candidates {
        oracle_calls += cand.state.oracle_calls();
        if cand.value > best_value {
            best_value = cand.value;
            best_items = cand.state.items().to_vec();
        }
    }
    SieveOutcome {
        items: best_items,
        value: best_value,
        candidates: ever,
        oracle_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MeanUtility;
    use crate::algorithms::greedy::{greedy, GreedyConfig};
    use crate::toy;

    #[test]
    fn sieve_achieves_half_of_greedy() {
        for seed in 1..6u64 {
            let sys = toy::random_coverage(40, 120, 3, 0.1, seed);
            let f = MeanUtility::new(sys.num_users());
            let k = 6;
            let gre = greedy(&sys, &f, &GreedyConfig::lazy(k));
            let sieve = sieve_streaming(&sys, &f, &SieveConfig::new(k));
            // (1/2 − ε)·OPT ≥ (1/2 − ε)·greedy; use 0.4·greedy as slack.
            assert!(
                sieve.value + 1e-9 >= 0.4 * gre.value,
                "seed {seed}: sieve {} vs greedy {}",
                sieve.value,
                gre.value
            );
            assert!(sieve.items.len() <= k);
        }
    }

    #[test]
    fn sieve_on_figure1_is_sensible() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        let out = sieve_streaming(&sys, &f, &SieveConfig::new(2));
        assert!(out.value >= 0.5); // greedy gets 0.75; half is guaranteed
        assert!(out.candidates > 0);
    }

    #[test]
    fn sieve_respects_cardinality() {
        let sys = toy::random_coverage(30, 60, 2, 0.3, 9);
        let f = MeanUtility::new(sys.num_users());
        for k in [1usize, 3, 10] {
            let out = sieve_streaming(&sys, &f, &SieveConfig::new(k));
            assert!(out.items.len() <= k, "k = {k}");
        }
    }

    #[test]
    fn tighter_epsilon_never_hurts_much() {
        let sys = toy::random_coverage(50, 100, 2, 0.08, 4);
        let f = MeanUtility::new(sys.num_users());
        let loose = sieve_streaming(&sys, &f, &SieveConfig { k: 5, epsilon: 0.5 });
        let tight = sieve_streaming(
            &sys,
            &f,
            &SieveConfig {
                k: 5,
                epsilon: 0.05,
            },
        );
        assert!(tight.value + 0.05 >= loose.value);
        assert!(tight.candidates >= loose.candidates);
    }
}
