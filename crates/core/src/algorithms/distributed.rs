//! Two-round distributed greedy — GreeDi (Mirzasoleiman et al.,
//! JMLR 2016), the paper's related-work reference \[46\] for the
//! distributed setting.
//!
//! Round 1 partitions the ground set into `p` shards and runs greedy
//! independently on each (in a real deployment, on separate machines);
//! round 2 runs greedy on the union of the shard solutions and returns
//! the better of (a) the round-2 solution and (b) the best shard
//! solution. Guarantee: `(1 − 1/e)/min(√k, p)·OPT` in general, and
//! `(1 − 1/e)` under random partitioning in expectation for many
//! practical instances — in tests it lands within a few percent of
//! centralized greedy.
//!
//! This makes the greedy-for-`f` stage of both BSM schemes shardable;
//! the fairness stages operate on the merged candidate pool.

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

use super::greedy::GreedyVariant;
use super::InvalidConfig;

/// Configuration for [`greedi`].
#[derive(Clone, Debug)]
pub struct GreediConfig {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Number of shards `p ≥ 1`.
    pub shards: usize,
    /// Greedy evaluation strategy within shards and in round 2.
    pub variant: GreedyVariant,
    /// Shard assignment seed (items are assigned round-robin after a
    /// seeded shuffle).
    pub seed: u64,
}

impl GreediConfig {
    /// Defaults: 4 shards, lazy greedy.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            shards: 4,
            variant: GreedyVariant::Lazy,
            seed: 0,
        }
    }

    /// Checks the config's numeric domain (`shards ≥ 1`).
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        if self.shards >= 1 {
            Ok(())
        } else {
            Err(InvalidConfig::new(
                "greedi",
                format!("shards must be >= 1, got {}", self.shards),
            ))
        }
    }
}

/// The seeded round-robin partition GreeDi shards the ground set with:
/// a Fisher–Yates shuffle driven by an xorshift stream on `seed | 1`,
/// then shard `s` takes positions `s, s + p, s + 2p, …` of the shuffled
/// order. Shared by [`greedi`], the native GreeDi session, and
/// [`crate::engine::ShardedInstance`], so every sharded consumer agrees
/// on the partition bit for bit.
///
/// Members are returned in shuffled (not sorted) order; the per-shard
/// greedy sorts its candidate list, so the order here only matters for
/// reproducing the partition itself.
pub fn shard_partition(n: usize, shards: usize, seed: u64) -> Vec<Vec<ItemId>> {
    let shards = shards.max(1);
    let mut order: Vec<ItemId> = (0..n as ItemId).collect();
    let mut state = seed | 1;
    for i in (1..order.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    (0..shards)
        .map(|shard| order.iter().copied().skip(shard).step_by(shards).collect())
        .collect()
}

/// Result of [`greedi`].
#[derive(Clone, Debug)]
pub struct GreediOutcome {
    /// Final solution (≤ k items).
    pub items: Vec<ItemId>,
    /// Its aggregate value.
    pub value: f64,
    /// Value of the best single-shard solution (diagnostics).
    pub best_shard_value: f64,
    /// Oracle calls across both rounds.
    pub oracle_calls: u64,
}

/// Runs two-round GreeDi over `0..n` with a seeded random partition.
///
/// Rejects `shards = 0` with a typed [`InvalidConfig`] instead of
/// asserting: the engine adapter forwards the rejection as a
/// [`crate::engine::SolverError::InvalidParams`], so a bad scenario spec
/// never takes down a grid run.
pub fn greedi<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    cfg: &GreediConfig,
) -> Result<GreediOutcome, InvalidConfig> {
    cfg.validate()?;
    let n = system.num_items();
    let k = cfg.k;

    let partition = shard_partition(n, cfg.shards, cfg.seed);
    let mut oracle_calls = 0u64;
    let mut pool: Vec<ItemId> = Vec::with_capacity(cfg.shards * k);
    let mut best_shard: (f64, Vec<ItemId>) = (f64::NEG_INFINITY, Vec::new());
    for members in &partition {
        let run = greedy_over_subset(system, aggregate, members, k, cfg.variant.clone());
        oracle_calls += run.1;
        let value = run.2;
        if value > best_shard.0 {
            best_shard = (value, run.0.clone());
        }
        pool.extend(run.0);
    }

    // Round 2 on the merged pool.
    let round2 = greedy_over_subset(system, aggregate, &pool, k, cfg.variant.clone());
    oracle_calls += round2.1;

    Ok(merge_outcome(round2, best_shard, oracle_calls))
}

/// Final GreeDi comparison: the better of the round-2 solution and the
/// best single-shard solution (ties go to round 2). Shared with the
/// sharded tier so the decision rule can never drift.
pub(crate) fn merge_outcome(
    round2: (Vec<ItemId>, u64, f64),
    best_shard: (f64, Vec<ItemId>),
    oracle_calls: u64,
) -> GreediOutcome {
    if round2.2 >= best_shard.0 {
        GreediOutcome {
            items: round2.0,
            value: round2.2,
            best_shard_value: best_shard.0,
            oracle_calls,
        }
    } else {
        GreediOutcome {
            items: best_shard.1.clone(),
            value: best_shard.0,
            best_shard_value: best_shard.0,
            oracle_calls,
        }
    }
}

/// Greedy restricted to a candidate subset; returns
/// `(items, oracle_calls, value)`. Crate-visible so the sharded tier and
/// the native GreeDi session run the exact argmax/tie-break rule the
/// one-shot algorithm runs.
///
/// `variant` is honored: `Lazy` (the [`GreediConfig`] default) runs a
/// candidate-restricted CELF with the same heap ordering, tie-break, and
/// batched stale refreshes as the central [`super::greedy::greedy`]
/// engine — round 1 of GreeDi runs over `n/p`-sized shards, where lazy
/// evaluation pays exactly as it does centrally. `Naive` (and
/// `Stochastic`, which degenerates to it on a restricted pool) keeps the
/// historical per-round scan in ascending id order with the strict
/// `> best + 1e-15` improvement rule, batched through one
/// `gains_batch_into` per round.
pub(crate) fn greedy_over_subset<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    candidates: &[ItemId],
    k: usize,
    variant: GreedyVariant,
) -> (Vec<ItemId>, u64, f64) {
    use std::collections::BinaryHeap;

    use super::greedy::{best_candidate, HeapEntry, CELF_BATCH_CAP};

    let mut candidates = candidates.to_vec();
    candidates.sort_unstable();
    candidates.dedup();
    let mut state = SolutionState::new(system);
    let mut chosen: Vec<ItemId> = Vec::with_capacity(k);
    let mut gains: Vec<f64> = Vec::new();
    match variant {
        GreedyVariant::Lazy => {
            if k == 0 || candidates.is_empty() {
                let value = state.value(aggregate);
                return (chosen, state.oracle_calls(), value);
            }
            // Seed the heap with one batched scan of the pool, then run
            // CELF rounds with doubling stale-refresh slabs — the same
            // scheme (and thus the same selections) as the central lazy
            // engine, restricted to `candidates`.
            let c = system.num_groups();
            gains.resize(candidates.len() * c, 0.0);
            state.gains_batch_into(&candidates, &mut gains);
            let mut heap = BinaryHeap::with_capacity(candidates.len());
            for (j, &v) in candidates.iter().enumerate() {
                let bound = aggregate.gain(state.group_sums(), &gains[j * c..(j + 1) * c]);
                heap.push(HeapEntry {
                    bound,
                    item: v,
                    round: 0,
                });
            }
            let mut batch: Vec<ItemId> = Vec::new();
            for round in 0..k {
                let mut slab = 1usize;
                let top = loop {
                    match heap.peek() {
                        None => break None,
                        Some(entry) if entry.round == round => break heap.pop(),
                        Some(_) => {}
                    }
                    batch.clear();
                    while batch.len() < slab {
                        match heap.peek() {
                            Some(entry) if entry.round != round => {
                                batch.push(heap.pop().expect("peeked").item);
                            }
                            _ => break,
                        }
                    }
                    gains.clear();
                    gains.resize(batch.len() * c, 0.0);
                    state.gains_batch_into(&batch, &mut gains);
                    for (j, &v) in batch.iter().enumerate() {
                        let bound = aggregate.gain(state.group_sums(), &gains[j * c..(j + 1) * c]);
                        heap.push(HeapEntry {
                            bound,
                            item: v,
                            round,
                        });
                    }
                    slab = (slab * 2).min(CELF_BATCH_CAP);
                };
                match top {
                    Some(entry) if entry.bound > 1e-15 => {
                        state.insert(entry.item);
                        chosen.push(entry.item);
                    }
                    _ => break,
                }
            }
        }
        GreedyVariant::Naive | GreedyVariant::Stochastic { .. } => {
            let mut live: Vec<ItemId> = Vec::with_capacity(candidates.len());
            for _ in 0..k {
                live.clear();
                live.extend(candidates.iter().copied().filter(|&v| !state.contains(v)));
                match best_candidate(&mut state, aggregate, &live, &mut gains) {
                    Some((gain, v)) if gain > 1e-15 => {
                        state.insert(v);
                        chosen.push(v);
                    }
                    _ => break,
                }
            }
        }
    }
    let value = state.value(aggregate);
    (chosen, state.oracle_calls(), value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MeanUtility;
    use crate::algorithms::greedy::{greedy, GreedyConfig};
    use crate::toy;

    #[test]
    fn greedi_close_to_centralized_greedy() {
        for seed in 1..5u64 {
            let sys = toy::random_coverage(60, 150, 3, 0.08, seed);
            let f = MeanUtility::new(sys.num_users());
            let central = greedy(&sys, &f, &GreedyConfig::lazy(6));
            let mut cfg = GreediConfig::new(6);
            cfg.seed = seed;
            let dist = greedi(&sys, &f, &cfg).expect("valid config");
            assert!(
                dist.value + 1e-9 >= 0.7 * central.value,
                "seed {seed}: greedi {} vs central {}",
                dist.value,
                central.value
            );
            assert!(dist.items.len() <= 6);
        }
    }

    #[test]
    fn single_shard_equals_plain_greedy_value() {
        let sys = toy::random_coverage(30, 80, 2, 0.15, 7);
        let f = MeanUtility::new(sys.num_users());
        let central = greedy(&sys, &f, &GreedyConfig::naive(5));
        let mut cfg = GreediConfig::new(5);
        cfg.shards = 1;
        let dist = greedi(&sys, &f, &cfg).expect("valid config");
        assert!((dist.value - central.value).abs() < 1e-9);
    }

    #[test]
    fn round2_never_below_best_shard() {
        let sys = toy::random_coverage(40, 100, 2, 0.1, 3);
        let f = MeanUtility::new(sys.num_users());
        let mut cfg = GreediConfig::new(5);
        cfg.shards = 8;
        let dist = greedi(&sys, &f, &cfg).expect("valid config");
        assert!(dist.value + 1e-12 >= dist.best_shard_value);
    }

    #[test]
    fn deterministic_per_seed() {
        let sys = toy::random_coverage(40, 100, 2, 0.1, 9);
        let f = MeanUtility::new(sys.num_users());
        let cfg = GreediConfig::new(4);
        let a = greedi(&sys, &f, &cfg).expect("valid config");
        let b = greedi(&sys, &f, &cfg).expect("valid config");
        assert_eq!(a.items, b.items);
    }

    #[test]
    fn zero_shards_is_a_typed_rejection() {
        let sys = toy::random_coverage(10, 20, 2, 0.2, 1);
        let f = MeanUtility::new(sys.num_users());
        let mut cfg = GreediConfig::new(3);
        cfg.shards = 0;
        let err = greedi(&sys, &f, &cfg).unwrap_err();
        assert_eq!(err.algorithm, "greedi");
        assert!(err.message.contains("shards"), "{}", err.message);
    }

    #[test]
    fn lazy_subset_greedy_matches_naive_subset_greedy() {
        // The restricted CELF must select the same items as the
        // restricted naive scan (integer coverage gains: ties are exact
        // and both tie-break toward the smaller id), with fewer calls.
        for seed in 1..5u64 {
            let sys = toy::random_coverage(50, 120, 3, 0.1, seed);
            let f = MeanUtility::new(sys.num_users());
            let candidates: Vec<ItemId> = (0..50).filter(|v| v % 3 != 1).collect();
            let naive = greedy_over_subset(&sys, &f, &candidates, 8, GreedyVariant::Naive);
            let lazy = greedy_over_subset(&sys, &f, &candidates, 8, GreedyVariant::Lazy);
            assert_eq!(naive.0, lazy.0, "seed {seed}");
            assert_eq!(naive.2.to_bits(), lazy.2.to_bits(), "seed {seed}");
            assert!(lazy.1 <= naive.1, "seed {seed}: {} vs {}", lazy.1, naive.1);
        }
    }

    #[test]
    fn shard_partition_covers_ground_set_exactly_once() {
        for shards in [1usize, 2, 4, 8] {
            let partition = shard_partition(37, shards, 5);
            assert_eq!(partition.len(), shards);
            let mut all: Vec<ItemId> = partition.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..37).collect::<Vec<ItemId>>());
        }
    }
}
