//! Solution evaluation and fairness/utility reporting.

use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

/// Full evaluation of a solution: utility, fairness, and per-group means.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Utility objective `f(S) = (1/m) Σ_u f_u(S)`.
    pub f: f64,
    /// Fairness objective `g(S) = min_i f_i(S)`.
    pub g: f64,
    /// Per-group mean utilities `f_i(S)`.
    pub group_means: Vec<f64>,
    /// Solution size `|S|`.
    pub size: usize,
}

impl Evaluation {
    /// Gap between the best- and worst-served group, `max_i f_i − min_i f_i`.
    pub fn group_gap(&self) -> f64 {
        let max = self
            .group_means
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        max - self.g
    }

    /// Whether the BSM fairness constraint `g(S) ≥ τ·opt_g` holds
    /// (with a small numerical slack).
    pub fn satisfies(&self, tau: f64, opt_g: f64) -> bool {
        self.g + 1e-9 >= tau * opt_g
    }
}

/// Evaluates a solution under `system`, computing `f`, `g`, and all `f_i`.
pub fn evaluate<S: UtilitySystem>(system: &S, items: &[ItemId]) -> Evaluation {
    let mut state = SolutionState::new(system);
    state.insert_all(items);
    evaluate_state(&state)
}

/// Evaluates an already-built [`SolutionState`] without recomputation.
pub fn evaluate_state<S: UtilitySystem>(state: &SolutionState<'_, S>) -> Evaluation {
    let system = state.system();
    let m = system.num_users() as f64;
    let sizes = system.group_sizes();
    let sums = state.group_sums();
    let group_means: Vec<f64> = sums
        .iter()
        .zip(sizes)
        .map(|(&s, &m_i)| s / m_i as f64)
        .collect();
    let f = sums.iter().sum::<f64>() / m;
    let g = group_means.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    Evaluation {
        f,
        g,
        group_means,
        size: state.len(),
    }
}

/// Price of fairness: relative loss in utility of `fair` versus the
/// fairness-unaware optimum/approximation `unconstrained`,
/// `1 − f(fair)/f(unconstrained)`. Returns 0 when the denominator is 0.
pub fn price_of_fairness(unconstrained_f: f64, fair_f: f64) -> f64 {
    if unconstrained_f <= 0.0 {
        0.0
    } else {
        1.0 - fair_f / unconstrained_f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn figure1_worked_numbers() {
        // Example 3.1 of the paper.
        let sys = toy::figure1();
        let e12 = evaluate(&sys, &[0, 1]); // S12 = {v1, v2}
        assert!((e12.f - 0.75).abs() < 1e-12);
        let e14 = evaluate(&sys, &[0, 3]); // S14 = {v1, v4}
        assert!((e14.g - 5.0 / 9.0).abs() < 1e-12);
        assert!((e14.group_means[0] - 5.0 / 9.0).abs() < 1e-12);
        assert!((e14.group_means[1] - 2.0 / 3.0).abs() < 1e-12);
        let e13 = evaluate(&sys, &[0, 2]); // S13 = {v1, v3}
        assert!((e13.g - 1.0 / 3.0).abs() < 1e-12);
        assert!((e13.f - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn satisfies_constraint_with_slack() {
        let e = Evaluation {
            f: 1.0,
            g: 0.5,
            group_means: vec![0.5, 0.9],
            size: 2,
        };
        assert!(e.satisfies(0.9, 0.5555));
        assert!(!e.satisfies(1.0, 0.6));
        assert!((e.group_gap() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn price_of_fairness_bounds() {
        assert_eq!(price_of_fairness(0.0, 0.5), 0.0);
        assert!((price_of_fairness(1.0, 0.75) - 0.25).abs() < 1e-12);
        assert_eq!(price_of_fairness(2.0, 2.0), 0.0);
    }
}
