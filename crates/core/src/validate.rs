//! Randomized oracle-contract validation for [`UtilitySystem`]
//! implementors.
//!
//! Downstream applications plug into the BSM algorithm suite by
//! implementing [`UtilitySystem`]; every guarantee in this crate rests on
//! that implementation being normalized, monotone, submodular, and
//! consistent between `group_gains` and `apply`. This module provides a
//! randomized checker for exactly those properties — the same checks the
//! internal property tests run, packaged as a public API so new oracles
//! can be validated in their own test suites:
//!
//! ```
//! use fair_submod_core::validate::{check_contract, ValidationConfig};
//! let system = fair_submod_core::toy::figure1();
//! check_contract(&system, &ValidationConfig::default()).unwrap();
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

/// Configuration for [`check_contract`].
#[derive(Clone, Debug)]
pub struct ValidationConfig {
    /// Number of random insertion trajectories to test.
    pub trials: usize,
    /// Maximum trajectory length (capped at the ground-set size).
    pub max_depth: usize,
    /// RNG seed.
    pub seed: u64,
    /// Numerical tolerance.
    pub tolerance: f64,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        Self {
            trials: 16,
            max_depth: 8,
            seed: 0x5EED,
            tolerance: 1e-9,
        }
    }
}

/// A detected contract violation.
#[derive(Clone, Debug, PartialEq)]
pub enum ContractViolation {
    /// Structural inconsistency (sizes, empty groups, …).
    Shape(String),
    /// `group_gains` returned a negative entry (non-monotone utility).
    NegativeGain {
        /// The offending item.
        item: ItemId,
        /// The group with negative gain.
        group: usize,
        /// The gain value.
        gain: f64,
    },
    /// A marginal gain grew after the solution was extended.
    SubmodularityViolated {
        /// The probed item.
        item: ItemId,
        /// The group whose gain grew.
        group: usize,
        /// Gain before the extension.
        before: f64,
        /// Gain after the extension.
        after: f64,
    },
    /// `group_gains` disagreed with the sum delta produced by `apply`.
    GainApplyMismatch {
        /// The inserted item.
        item: ItemId,
        /// Predicted per-group gains.
        predicted: Vec<f64>,
        /// Observed per-group sum deltas.
        observed: Vec<f64>,
    },
    /// Re-applying a chosen item changed the state's value.
    NotIdempotent {
        /// The re-applied item.
        item: ItemId,
    },
}

impl std::fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContractViolation::Shape(msg) => write!(f, "shape violation: {msg}"),
            ContractViolation::NegativeGain { item, group, gain } => {
                write!(f, "negative gain {gain} for item {item}, group {group}")
            }
            ContractViolation::SubmodularityViolated {
                item,
                group,
                before,
                after,
            } => write!(
                f,
                "submodularity violated for item {item}, group {group}: {before} → {after}"
            ),
            ContractViolation::GainApplyMismatch {
                item,
                predicted,
                observed,
            } => write!(
                f,
                "gain/apply mismatch for item {item}: predicted {predicted:?}, observed {observed:?}"
            ),
            ContractViolation::NotIdempotent { item } => {
                write!(f, "re-applying item {item} changed the state")
            }
        }
    }
}

impl std::error::Error for ContractViolation {}

/// Validates the [`UtilitySystem`] contract on random trajectories.
///
/// Checks: shape sanity, non-negative gains (monotonicity), shrinking
/// gains (submodularity), `group_gains`/`apply` consistency, and apply
/// idempotence. Returns the first violation found.
///
/// Note: this validates *monotone* systems; wrap non-monotone systems
/// (e.g. [`crate::algorithms::nonmonotone::PenalizedSystem`]) are
/// expected to fail the monotonicity check by design.
pub fn check_contract<S: UtilitySystem>(
    system: &S,
    cfg: &ValidationConfig,
) -> Result<(), ContractViolation> {
    let n = system.num_items();
    let c = system.num_groups();
    if n == 0 {
        return Err(ContractViolation::Shape("empty ground set".into()));
    }
    if system.group_sizes().iter().sum::<usize>() != system.num_users() {
        return Err(ContractViolation::Shape(
            "group sizes do not sum to the user count".into(),
        ));
    }
    if system.group_sizes().contains(&0) {
        return Err(ContractViolation::Shape("empty group".into()));
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let tol = cfg.tolerance;
    for _ in 0..cfg.trials {
        let mut state = SolutionState::new(system);
        let depth = cfg.max_depth.min(n);
        let mut gains_before: Vec<Vec<f64>> = Vec::with_capacity(n);
        let mut buf = vec![0.0; c];
        for v in 0..n as ItemId {
            state.gains_into(v, &mut buf);
            if let Some(g) = buf.iter().position(|&x| x < -tol) {
                return Err(ContractViolation::NegativeGain {
                    item: v,
                    group: g,
                    gain: buf[g],
                });
            }
            gains_before.push(buf.clone());
        }

        for _ in 0..depth {
            let v = rng.gen_range(0..n) as ItemId;
            if state.contains(v) {
                continue;
            }
            // Predicted gains vs observed sum delta.
            let mut predicted = vec![0.0; c];
            state.gains_into(v, &mut predicted);
            let before_sums = state.group_sums().to_vec();
            state.insert(v);
            let observed: Vec<f64> = state
                .group_sums()
                .iter()
                .zip(&before_sums)
                .map(|(a, b)| a - b)
                .collect();
            let mismatch = predicted
                .iter()
                .zip(&observed)
                .any(|(p, o)| (p - o).abs() > tol.max(1e-7 * p.abs()));
            if mismatch {
                return Err(ContractViolation::GainApplyMismatch {
                    item: v,
                    predicted,
                    observed,
                });
            }

            // Submodularity: all gains must have shrunk (weakly).
            for u in 0..n as ItemId {
                state.gains_into(u, &mut buf);
                for g in 0..c {
                    if buf[g] > gains_before[u as usize][g] + tol {
                        return Err(ContractViolation::SubmodularityViolated {
                            item: u,
                            group: g,
                            before: gains_before[u as usize][g],
                            after: buf[g],
                        });
                    }
                }
                gains_before[u as usize].copy_from_slice(&buf);
            }

            // Idempotence of apply on an already-chosen item.
            let sums_before = state.group_sums().to_vec();
            let mut probe = vec![0.0; c];
            state.gains_into(v, &mut probe);
            if probe.iter().any(|&x| x.abs() > tol) {
                return Err(ContractViolation::NotIdempotent { item: v });
            }
            debug_assert_eq!(sums_before, state.group_sums());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn figure1_passes() {
        check_contract(&toy::figure1(), &ValidationConfig::default()).unwrap();
    }

    #[test]
    fn random_coverage_passes() {
        for seed in 1..4 {
            let sys = toy::random_coverage(15, 40, 3, 0.2, seed);
            check_contract(&sys, &ValidationConfig::default()).unwrap();
        }
    }

    #[test]
    fn penalized_system_fails_monotonicity() {
        use crate::algorithms::nonmonotone::PenalizedSystem;
        let sys = PenalizedSystem::new(toy::figure1(), vec![0.5; 4]);
        let err = check_contract(&sys, &ValidationConfig::default()).unwrap_err();
        assert!(matches!(err, ContractViolation::NegativeGain { .. }));
    }

    /// A deliberately broken oracle: `apply` forgets to commit, so
    /// already-chosen items keep reporting positive gains.
    #[derive(Clone)]
    struct Broken(toy::MiniCoverage);

    impl UtilitySystem for Broken {
        type Inner = Vec<bool>;
        fn num_items(&self) -> usize {
            self.0.num_items()
        }
        fn num_users(&self) -> usize {
            self.0.num_users()
        }
        fn group_sizes(&self) -> &[usize] {
            self.0.group_sizes()
        }
        fn init_inner(&self) -> Self::Inner {
            self.0.init_inner()
        }
        fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
            self.0.group_gains(inner, item, out);
        }
        fn apply(&self, _inner: &mut Self::Inner, _item: ItemId) {
            // Forgotten commit: the classic incremental-oracle bug.
        }
    }

    #[test]
    fn inconsistent_oracle_is_caught() {
        let sys = Broken(toy::figure1());
        let err = check_contract(&sys, &ValidationConfig::default()).unwrap_err();
        assert!(
            matches!(err, ContractViolation::NotIdempotent { .. }),
            "unexpected violation {err:?}"
        );
    }

    #[test]
    fn violation_messages_render() {
        let v = ContractViolation::NegativeGain {
            item: 3,
            group: 1,
            gain: -0.5,
        };
        assert!(v.to_string().contains("item 3"));
        let v = ContractViolation::Shape("bad".into());
        assert!(v.to_string().contains("bad"));
    }
}
