//! # fair-submod-core
//!
//! Core library for **Bicriteria Submodular Maximization (BSM)** — the
//! problem of selecting a size-`k` set of items that maximizes the average
//! utility over a population of users (*utility*, `f`) while guaranteeing
//! that the least well-off demographic group still receives at least a
//! `τ`-fraction of the best achievable minimum group utility (*fairness*,
//! `g`). This reproduces the algorithmic framework of
//! *"Balancing Utility and Fairness in Submodular Maximization"*
//! (Wang, Li, Bonchi, Wang; EDBT 2024, arXiv:2211.00980).
//!
//! ## Architecture
//!
//! * [`system::UtilitySystem`] — the oracle abstraction. An application
//!   (maximum coverage, influence maximization, facility location, …)
//!   implements incremental evaluation of the per-group utility sums
//!   `Σ_{u∈U_i} f_u(S)`.
//! * [`aggregate::Aggregate`] — maps per-group utility sums to a scalar
//!   objective. All composite objectives of the paper (`f`, `f_i`, `g`,
//!   the Saturate truncation `ḡ_t`, TSGreedy's `g'_τ` and BSM-Saturate's
//!   `F'_α`) are aggregates.
//! * [`algorithms`] — Greedy (naive / lazy-forward / stochastic), greedy
//!   submodular cover, Saturate for robust submodular maximization,
//!   **BSM-TSGreedy** (Algorithm 1), **BSM-Saturate** (Algorithm 2), the
//!   SMSC baseline, random/degree baselines, and exact solvers
//!   (brute force and submodular branch-and-bound).
//! * [`engine`] — the uniform execution boundary: every algorithm entry
//!   point registered as a named [`engine::Solver`] in a
//!   [`engine::SolverRegistry`], driven by serializable
//!   [`engine::ScenarioParams`] and reporting through a uniform
//!   [`engine::SolveReport`].
//!
//! ## Quickstart
//!
//! ```
//! use fair_submod_core::prelude::*;
//! use fair_submod_core::toy;
//!
//! // The running example of the paper (Figure 1): 4 items, 12 users in 2 groups.
//! let system = toy::figure1();
//! let cfg = TsGreedyConfig::new(2, 0.2);
//! let out = bsm_tsgreedy(&system, &cfg);
//! let eval = evaluate(&system, &out.items);
//! assert!(eval.f > 0.0 && eval.g > 0.0);
//! ```

pub mod aggregate;
pub mod algorithms;
pub mod bitset;
pub mod curvature;
pub mod engine;
pub mod items;
pub mod metrics;
pub mod system;
pub mod toy;
pub mod validate;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::aggregate::{
        Aggregate, BsmObjective, GroupMeanUtility, MeanUtility, MinGroupUtility, TruncatedMean,
    };
    pub use crate::algorithms::baselines::{random_subset, top_singletons};
    pub use crate::algorithms::bsm_saturate::{bsm_saturate, BsmSaturateConfig};
    pub use crate::algorithms::cover::{submodular_cover, CoverOutcome};
    pub use crate::algorithms::distributed::{
        greedi, shard_partition, GreediConfig, GreediOutcome,
    };
    pub use crate::algorithms::exact::{
        branch_and_bound_bsm, brute_force_bsm, brute_force_max, BsmOptimal, ExactConfig,
    };
    pub use crate::algorithms::greedy::{greedy, GreedyConfig, GreedyOutcome, GreedyVariant};
    pub use crate::algorithms::knapsack::{knapsack_greedy, KnapsackConfig};
    pub use crate::algorithms::local_search::{local_search_refine, LocalSearchConfig};
    pub use crate::algorithms::mwu::{mwu_robust, MwuConfig};
    pub use crate::algorithms::nonmonotone::{random_greedy, PenalizedSystem, RandomGreedyConfig};
    pub use crate::algorithms::pareto::{
        hypervolume, pareto_filter, pareto_frontier, Frontier, FrontierConfig, FrontierSolver,
    };
    pub use crate::algorithms::saturate::{saturate, SaturateConfig, SaturateOutcome};
    pub use crate::algorithms::smsc::{smsc, SmscConfig};
    pub use crate::algorithms::streaming::{sieve_streaming, SieveConfig};
    pub use crate::algorithms::tsgreedy::{bsm_tsgreedy, TsGreedyConfig};
    pub use crate::algorithms::{BsmOutcome, InvalidConfig};
    pub use crate::engine::{
        Capabilities, DynUtilitySystem, ErasedSystem, PartialSolution, ScenarioParams,
        SessionStatus, ShardOracle, ShardedInstance, SolveReport, SolveSession, Solver,
        SolverError, SolverRegistry, SubsetSystem,
    };
    pub use crate::items::{ItemId, ItemSet};
    pub use crate::metrics::{evaluate, Evaluation};
    pub use crate::system::{SolutionState, SystemExt, UtilitySystem};
}
