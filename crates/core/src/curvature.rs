//! Total curvature of a submodular instance and the induced
//! instance-dependent greedy bound.
//!
//! The paper's whole agenda is *instance-dependent* approximation
//! factors (BSM admits no constant factor, Theorem 3.2 ff.). Curvature
//! is the classic instance parameter on the utility side: for a monotone
//! submodular `h` with total curvature
//!
//! ```text
//! κ = 1 − min_{v: h({v})>0}  Δ(v | V∖{v}) / h({v})   ∈ [0, 1]
//! ```
//!
//! greedy is `(1/κ)(1 − e^{−κ})`-approximate (Conforti & Cornuéjols,
//! 1984) — strictly better than `1 − 1/e` when `κ < 1`. Coverage
//! instances usually have κ = 1; facility location often has κ < 1,
//! which explains why greedy is near-optimal on the paper's FL
//! datasets (Fig. 7: Greedy ≈ BSM-Optimal at τ = 0).

use crate::aggregate::Aggregate;
use crate::items::ItemId;
use crate::system::{SolutionState, UtilitySystem};

/// Curvature measurement result.
#[derive(Clone, Debug)]
pub struct Curvature {
    /// Total curvature `κ ∈ \[0, 1\]`.
    pub kappa: f64,
    /// The item attaining the minimum ratio.
    pub witness: Option<ItemId>,
    /// The induced greedy guarantee `(1/κ)(1 − e^{−κ})`
    /// (limit `1` as κ → 0).
    pub greedy_factor: f64,
}

/// Measures the total curvature of `aggregate ∘ system`.
///
/// Runs `2n + 1` oracle evaluations: each singleton value and each
/// last-item marginal gain.
pub fn total_curvature<S: UtilitySystem, A: Aggregate>(system: &S, aggregate: &A) -> Curvature {
    let n = system.num_items();
    let mut empty = SolutionState::new(system);
    let singleton: Vec<f64> = (0..n as ItemId).map(|v| empty.gain(aggregate, v)).collect();

    // State with everything inserted except one item each time would be
    // O(n²); instead build V once and evaluate Δ(v | V∖{v}) via the
    // complement trick: value(V) − value(V∖{v}) requires removals, which
    // the oracle doesn't support. We therefore build V∖{v} states
    // incrementally in two prefix/suffix passes (standard trick):
    // prefix[i] = state with items 0..i, suffix[i] = items i..n.
    // Δ(v | V∖{v}) = value(prefix[v] ∪ suffix[v+1] ∪ {v}) − value(…)
    // is still awkward for general oracles, so for clarity we pay O(n)
    // state rebuilds of V∖{v} only for candidate minimizers: items whose
    // singleton value is within 10× of the smallest positive singleton
    // (the minimum ratio needs a small denominator or a small gain, and
    // gains are bounded by singletons via submodularity).
    let mut kappa_min_ratio = f64::INFINITY;
    let mut witness = None;

    // Cheap upper bound pass: Δ(v | V∖{v}) ≤ singleton(v); a ratio of 1
    // means zero curvature contribution. Evaluate exactly for all items
    // when n is small, else for the most promising half.
    let exact_all = n <= 512;
    let mut candidates: Vec<ItemId> = (0..n as ItemId)
        .filter(|&v| singleton[v as usize] > 1e-12)
        .collect();
    if !exact_all {
        candidates.sort_by(|&a, &b| {
            singleton[a as usize]
                .partial_cmp(&singleton[b as usize])
                .unwrap()
        });
        candidates.truncate(n / 2);
    }

    for &v in &candidates {
        let mut without = SolutionState::new(system);
        for u in 0..n as ItemId {
            if u != v {
                without.insert(u);
            }
        }
        let gain_last = without.gain(aggregate, v);
        let ratio = (gain_last / singleton[v as usize]).clamp(0.0, 1.0);
        if ratio < kappa_min_ratio {
            kappa_min_ratio = ratio;
            witness = Some(v);
        }
    }

    let kappa = if kappa_min_ratio.is_finite() {
        (1.0 - kappa_min_ratio).clamp(0.0, 1.0)
    } else {
        0.0 // all singletons worthless: constant function, κ = 0
    };
    Curvature {
        kappa,
        witness,
        greedy_factor: greedy_factor(kappa),
    }
}

/// The curvature-dependent greedy factor `(1/κ)(1 − e^{−κ})`.
pub fn greedy_factor(kappa: f64) -> f64 {
    assert!((0.0..=1.0 + 1e-12).contains(&kappa));
    if kappa < 1e-9 {
        1.0
    } else {
        (1.0 - (-kappa).exp()) / kappa
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MeanUtility;
    use crate::toy;

    #[test]
    fn greedy_factor_limits() {
        assert!((greedy_factor(0.0) - 1.0).abs() < 1e-12);
        assert!((greedy_factor(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(greedy_factor(0.5) > greedy_factor(1.0));
    }

    #[test]
    fn modular_instance_has_zero_curvature() {
        // Disjoint sets: coverage is modular, κ = 0, factor 1.
        let sys = toy::MiniCoverage::new(vec![vec![0], vec![1], vec![2]], vec![0, 0, 1]);
        let f = MeanUtility::new(3);
        let c = total_curvature(&sys, &f);
        assert!(c.kappa < 1e-9, "κ = {}", c.kappa);
        assert!((c.greedy_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fully_overlapping_instance_has_full_curvature() {
        // Two identical sets: the second adds nothing after the first.
        let sys = toy::MiniCoverage::new(vec![vec![0, 1], vec![0, 1]], vec![0, 1]);
        let f = MeanUtility::new(2);
        let c = total_curvature(&sys, &f);
        assert!((c.kappa - 1.0).abs() < 1e-9, "κ = {}", c.kappa);
        assert!(c.witness.is_some());
    }

    #[test]
    fn figure1_curvature_in_between() {
        let sys = toy::figure1();
        let f = MeanUtility::new(12);
        let c = total_curvature(&sys, &f);
        // v3 overlaps v2 in 2 of 3 users → ratio 1/3 → κ = 2/3.
        assert!((c.kappa - 2.0 / 3.0).abs() < 1e-9, "κ = {}", c.kappa);
        assert_eq!(c.witness, Some(2));
        assert!(c.greedy_factor > 1.0 - 1.0 / std::f64::consts::E);
    }

    #[test]
    fn greedy_respects_curvature_bound_empirically() {
        use crate::algorithms::exact::brute_force_max;
        use crate::algorithms::greedy::{greedy, GreedyConfig};
        for seed in 1..5u64 {
            let sys = toy::random_coverage(10, 25, 2, 0.3, seed);
            let f = MeanUtility::new(25);
            let c = total_curvature(&sys, &f);
            let run = greedy(&sys, &f, &GreedyConfig::lazy(3));
            let (_, opt) = brute_force_max(&sys, &f, 3);
            assert!(
                run.value + 1e-9 >= c.greedy_factor * opt,
                "seed {seed}: greedy {} < {}·OPT {}",
                run.value,
                c.greedy_factor,
                opt
            );
        }
    }
}
