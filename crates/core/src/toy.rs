//! A minimal in-crate coverage oracle and the paper's running example.
//!
//! [`MiniCoverage`] is a reference implementation of
//! [`UtilitySystem`] for plain (unweighted)
//! coverage: user `u`'s utility is `1` if any chosen item covers `u`, else
//! `0`. The production oracle lives in `fair-submod-coverage`; this one
//! exists so that `fair-submod-core` is self-contained for tests, doctests,
//! and property-based validation of the algorithms.
//!
//! [`figure1`] builds the exact instance of Figure 1 / Example 3.1 of the
//! paper, which the test suite uses to assert every worked number.

use crate::items::ItemId;
use crate::system::UtilitySystem;

/// Simple coverage utility system: `f_u(S) = 1` iff some item in `S`
/// covers user `u`.
#[derive(Clone, Debug)]
pub struct MiniCoverage {
    /// `covers[v]` = users covered by item `v`.
    covers: Vec<Vec<u32>>,
    /// `group_of[u]` = group index of user `u`.
    group_of: Vec<u32>,
    group_sizes: Vec<usize>,
}

impl MiniCoverage {
    /// Builds a coverage system.
    ///
    /// * `covers[v]` lists the users covered by item `v` (indices `< m`);
    /// * `group_of[u]` assigns each of the `m` users to a group `0..c`
    ///   (every group must be non-empty).
    pub fn new(covers: Vec<Vec<u32>>, group_of: Vec<u32>) -> Self {
        let c = group_of.iter().map(|&g| g as usize + 1).max().unwrap_or(1);
        let mut group_sizes = vec![0usize; c];
        for &g in &group_of {
            group_sizes[g as usize] += 1;
        }
        assert!(
            group_sizes.iter().all(|&s| s > 0),
            "every group must be non-empty"
        );
        for users in &covers {
            for &u in users {
                assert!(
                    (u as usize) < group_of.len(),
                    "covered user {u} out of range"
                );
            }
        }
        Self {
            covers,
            group_of,
            group_sizes,
        }
    }

    /// Users covered by `item`.
    pub fn covered_by(&self, item: ItemId) -> &[u32] {
        &self.covers[item as usize]
    }
}

impl UtilitySystem for MiniCoverage {
    /// Per-user coverage flags.
    type Inner = Vec<bool>;

    fn num_items(&self) -> usize {
        self.covers.len()
    }

    fn num_users(&self) -> usize {
        self.group_of.len()
    }

    fn group_sizes(&self) -> &[usize] {
        &self.group_sizes
    }

    fn init_inner(&self) -> Self::Inner {
        vec![false; self.group_of.len()]
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        out.fill(0.0);
        for &u in &self.covers[item as usize] {
            if !inner[u as usize] {
                out[self.group_of[u as usize] as usize] += 1.0;
            }
        }
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        for &u in &self.covers[item as usize] {
            inner[u as usize] = true;
        }
    }
}

/// The BSM running example of the paper (Figure 1).
///
/// Items `v1..v4` map to ids `0..4`; users `u11..u19` (group `U1`) to ids
/// `0..9` and `u21..u23` (group `U2`) to ids `9..12`. Coverage:
/// `S(v1) = {u11..u15}`, `S(v2) = {u16..u19}`, `S(v3) = {u16, u19, u21}`,
/// `S(v4) = {u22, u23}`.
pub fn figure1() -> MiniCoverage {
    let covers = vec![
        vec![0, 1, 2, 3, 4], // v1
        vec![5, 6, 7, 8],    // v2
        vec![5, 8, 9],       // v3
        vec![10, 11],        // v4
    ];
    let mut group_of = vec![0u32; 12];
    for g in group_of.iter_mut().skip(9) {
        *g = 1;
    }
    MiniCoverage::new(covers, group_of)
}

/// A deterministic pseudo-random coverage instance for tests and benches.
///
/// `n` items, `m` users in `c` groups (round-robin group assignment so all
/// groups are non-empty when `m ≥ c`), each item covering a hash-derived
/// subset of users with expected density `density`.
pub fn random_coverage(n: usize, m: usize, c: usize, density: f64, seed: u64) -> MiniCoverage {
    assert!(m >= c && c >= 1);
    // Small xorshift-based hash keeps this dependency-free and stable.
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let covers = (0..n)
        .map(|_| {
            (0..m as u32)
                .filter(|_| (next() >> 11) as f64 / ((1u64 << 53) as f64) < density)
                .collect()
        })
        .collect();
    let group_of = (0..m as u32).map(|u| u % c as u32).collect();
    MiniCoverage::new(covers, group_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SolutionState;

    #[test]
    fn figure1_shape() {
        let sys = figure1();
        assert_eq!(sys.num_items(), 4);
        assert_eq!(sys.num_users(), 12);
        assert_eq!(sys.group_sizes(), &[9, 3]);
    }

    #[test]
    fn coverage_gains_respect_overlap() {
        let sys = figure1();
        let mut st = SolutionState::new(&sys);
        let mut out = [0.0; 2];
        st.gains_into(1, &mut out); // v2 covers 4 group-1 users
        assert_eq!(out, [4.0, 0.0]);
        st.insert(1);
        st.gains_into(2, &mut out); // v3 covers u16,u19 (already) + u21 (new)
        assert_eq!(out, [0.0, 1.0]);
    }

    #[test]
    fn random_coverage_is_deterministic() {
        let a = random_coverage(10, 30, 3, 0.2, 7);
        let b = random_coverage(10, 30, 3, 0.2, 7);
        for v in 0..10 {
            assert_eq!(a.covered_by(v), b.covered_by(v));
        }
        assert_eq!(a.group_sizes(), &[10, 10, 10]);
    }
}
