//! The [`Solver`] trait and the name-indexed [`SolverRegistry`].

use std::time::Instant;

use serde::json::{obj, Value};
use serde::ToJson;

use super::erased::DynUtilitySystem;
use super::params::ScenarioParams;
use super::report::{SolveReport, SolverError};
use super::session::{OneShotSession, SolveSession};

/// Capability flags a solver declares so schedulers and tests can
/// reason about it without special-casing names.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Capabilities {
    /// Defined only for systems with exactly two groups (SMSC).
    pub requires_two_groups: bool,
    /// Produces the true optimum (and therefore carries size caps).
    pub exact: bool,
    /// Output depends on [`ScenarioParams::seed`] (still deterministic
    /// for a fixed seed).
    pub randomized: bool,
    /// Reads the balance factor `τ` (fairness-aware solvers).
    pub uses_tau: bool,
    /// Has a native incremental [`SolveSession`]: `open_session` yields
    /// a state machine that does real per-round work instead of the
    /// run-to-completion adapter.
    pub resumable: bool,
    /// Sessions serve *any* budget `k` up to their own bit-identically
    /// to a cold run at that budget ([`SolveSession::prefix_exact`]).
    /// Static per solver, so grid planners can group k-axes without
    /// opening a probe session; `tests/session_equivalence.rs` asserts
    /// the flag agrees with the opened session's own answer.
    pub prefix_exact: bool,
    /// Partitions the ground set and solves shards independently
    /// (reads [`ScenarioParams::shards`]); results for a fixed seed are
    /// identical for every shard count ≥ 1 only where documented, but
    /// always deterministic. These solvers compose with the sharded
    /// million-element tier (`engine::ShardedInstance`).
    pub sharded: bool,
    /// Consumes the ground set as a single arrival pass with sublinear
    /// memory in `n` (streaming solvers).
    pub streaming: bool,
}

impl ToJson for Capabilities {
    fn to_json(&self) -> Value {
        obj([
            ("requires_two_groups", Value::Bool(self.requires_two_groups)),
            ("exact", Value::Bool(self.exact)),
            ("randomized", Value::Bool(self.randomized)),
            ("uses_tau", Value::Bool(self.uses_tau)),
            ("resumable", Value::Bool(self.resumable)),
            ("prefix_exact", Value::Bool(self.prefix_exact)),
            ("sharded", Value::Bool(self.sharded)),
            ("streaming", Value::Bool(self.streaming)),
        ])
    }
}

/// One uniform execution boundary over the whole algorithm suite.
///
/// A solver receives a type-erased oracle and the scenario cell's
/// parameters, and either returns a [`SolveReport`] or rejects the cell
/// with a typed [`SolverError`] — never a panic — so a registry-driven
/// grid can sweep every solver over every cell and record capability
/// gaps in the report instead of crashing the run.
pub trait Solver: Send + Sync {
    /// Stable registry name (used in scenario specs and figure legends).
    fn name(&self) -> &'static str;

    /// Capability flags.
    fn capabilities(&self) -> Capabilities;

    /// Runs the solver on one scenario cell.
    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError>;

    /// Opens a resumable [`SolveSession`] for one scenario cell.
    ///
    /// The default adapter runs [`Solver::solve`] to completion and
    /// wraps the report, so every solver is sessionable; solvers that
    /// set [`Capabilities::resumable`] override this with a native
    /// state machine whose steps do real incremental work. Parameter
    /// validation happens here (same typed errors as `solve`), and the
    /// returned session owns all of its state — it borrows neither the
    /// solver nor the registry, so long-running services can park it
    /// across requests (stepping it with the same system it was opened
    /// on).
    fn open_session(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<Box<dyn SolveSession>, SolverError> {
        let mut report = self.solve(system, params)?;
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(Box::new(OneShotSession::new(self.name(), report)))
    }
}

/// Name-indexed collection of solvers; the execution boundary the
/// bench harness, examples, and cross-solver tests all drive.
///
/// [`SolverRegistry::default`] registers the full suite — every
/// `core::algorithms` entry point. New objectives plug in as additional
/// [`Solver`] impls via [`SolverRegistry::register`] instead of another
/// copy of the experiment grid.
///
/// The registry is `Send + Sync` ([`Solver`] requires both), so a
/// long-running service can build it once, wrap it in an `Arc`, and
/// answer concurrent solve requests from many threads.
pub struct SolverRegistry {
    solvers: Vec<Box<dyn Solver>>,
}

impl SolverRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            solvers: Vec::new(),
        }
    }

    /// Registers a solver; a later registration under an existing name
    /// replaces the earlier one (in place, preserving order).
    pub fn register(&mut self, solver: Box<dyn Solver>) {
        match self.solvers.iter_mut().find(|s| s.name() == solver.name()) {
            Some(slot) => *slot = solver,
            None => self.solvers.push(solver),
        }
    }

    /// Looks up a solver by its exact registry name.
    pub fn get(&self, name: &str) -> Option<&dyn Solver> {
        self.solvers
            .iter()
            .find(|s| s.name() == name)
            .map(Box::as_ref)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.solvers.iter().map(|s| s.name()).collect()
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }

    /// Runs the named solver on one cell, filling in the report's
    /// wall-clock `seconds` and the substrate's `gain_kernel` label.
    pub fn solve(
        &self,
        name: &str,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let solver = self.get(name).ok_or_else(|| SolverError::UnknownSolver {
            name: name.to_string(),
        })?;
        let start = Instant::now();
        let mut report = solver.solve(system, params)?;
        report.seconds = start.elapsed().as_secs_f64();
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(report)
    }

    /// Opens a [`SolveSession`] for the named solver (see
    /// [`Solver::open_session`]). Unlike [`SolverRegistry::solve`],
    /// sessions do not time themselves — callers stepping a session in
    /// chunks own the clock.
    pub fn open_session(
        &self,
        name: &str,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<Box<dyn SolveSession>, SolverError> {
        let solver = self.get(name).ok_or_else(|| SolverError::UnknownSolver {
            name: name.to_string(),
        })?;
        solver.open_session(system, params)
    }
}

impl Default for SolverRegistry {
    /// The full suite: all 16 `core::algorithms` entry points as
    /// registry entries (see [`super::adapters`]).
    fn default() -> Self {
        let mut registry = Self::new();
        for solver in super::adapters::all_solvers() {
            registry.register(solver);
        }
        registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn default_registry_has_all_sixteen_entry_points() {
        let registry = SolverRegistry::default();
        let names = registry.names();
        assert_eq!(names.len(), 16, "registry names: {names:?}");
        for expected in [
            "Greedy",
            "Saturate",
            "SMSC",
            "BSM-TSGreedy",
            "BSM-Saturate",
            "BSM-Optimal",
            "BruteForce",
            "Random",
            "TopSingletons",
            "SieveStreaming",
            "GreeDi",
            "Knapsack",
            "LocalSearch",
            "RandomGreedy",
            "MWU",
            "ParetoSweep",
        ] {
            assert!(registry.get(expected).is_some(), "missing {expected}");
        }
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolverRegistry>();
        let registry = std::sync::Arc::new(SolverRegistry::default());
        let sys = std::sync::Arc::new(toy::figure1());
        let baseline = registry
            .solve("Greedy", sys.as_ref(), &ScenarioParams::new(2, 0.5))
            .unwrap()
            .items;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let registry = std::sync::Arc::clone(&registry);
                let sys = std::sync::Arc::clone(&sys);
                std::thread::spawn(move || {
                    registry
                        .solve("Greedy", sys.as_ref(), &ScenarioParams::new(2, 0.5))
                        .unwrap()
                        .items
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), baseline);
        }
    }

    #[test]
    fn capabilities_serialize_as_flags() {
        let caps = Capabilities {
            exact: true,
            uses_tau: true,
            ..Capabilities::default()
        };
        let json = caps.to_json();
        assert_eq!(json.get("exact").and_then(Value::as_bool), Some(true));
        assert_eq!(
            json.get("requires_two_groups").and_then(Value::as_bool),
            Some(false)
        );
        assert_eq!(json.get("sharded").and_then(Value::as_bool), Some(false));
        assert_eq!(json.get("streaming").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn sharded_and_streaming_flags_are_declared_by_the_scale_solvers() {
        let registry = SolverRegistry::default();
        let greedi = registry.get("GreeDi").unwrap().capabilities();
        assert!(greedi.sharded && greedi.resumable && !greedi.streaming);
        let sieve = registry.get("SieveStreaming").unwrap().capabilities();
        assert!(sieve.streaming && sieve.resumable && !sieve.sharded);
        // No other entry claims the scale flags today.
        for name in registry.names() {
            if name != "GreeDi" && name != "SieveStreaming" {
                let caps = registry.get(name).unwrap().capabilities();
                assert!(!caps.sharded && !caps.streaming, "{name}");
            }
        }
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let registry = SolverRegistry::default();
        let sys = toy::figure1();
        let err = registry
            .solve("NotASolver", &sys, &ScenarioParams::new(2, 0.5))
            .unwrap_err();
        assert!(matches!(err, SolverError::UnknownSolver { .. }));
    }

    #[test]
    fn registration_replaces_by_name() {
        struct Stub;
        impl Solver for Stub {
            fn name(&self) -> &'static str {
                "Greedy"
            }
            fn capabilities(&self) -> Capabilities {
                Capabilities::default()
            }
            fn solve(
                &self,
                _system: &dyn crate::engine::DynUtilitySystem,
                _params: &ScenarioParams,
            ) -> Result<SolveReport, SolverError> {
                Err(SolverError::InvalidParams {
                    solver: "Greedy".into(),
                    message: "stub".into(),
                })
            }
        }
        let mut registry = SolverRegistry::default();
        let before = registry.len();
        registry.register(Box::new(Stub));
        assert_eq!(registry.len(), before);
        let sys = toy::figure1();
        let err = registry
            .solve("Greedy", &sys, &ScenarioParams::new(2, 0.5))
            .unwrap_err();
        assert!(matches!(err, SolverError::InvalidParams { .. }));
    }
}
