//! The uniform result of any registered solver, plus typed rejection
//! errors for capability gaps.

use std::fmt;

use serde::json::{obj, Error, Value};
use serde::{FromJson, ToJson};

use crate::items::ItemId;
use crate::metrics::Evaluation;

/// Uniform report of one solver run on one scenario cell.
///
/// Every solver — greedy anchors, the two BSM schemes, exact solvers,
/// baselines, and the extensions — reports through this one shape, so
/// the grid executor, figures, and persisted JSON artifacts never need
/// per-algorithm cases.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveReport {
    /// Registry name of the solver that produced this report.
    pub solver: String,
    /// Cardinality constraint `k` of the cell.
    pub k: usize,
    /// Balance factor `τ` of the cell.
    pub tau: f64,
    /// Chosen items in insertion order.
    pub items: Vec<ItemId>,
    /// Utility `f(S) = (1/m) Σ_u f_u(S)`.
    pub f: f64,
    /// Fairness `g(S) = min_i f_i(S)`.
    pub g: f64,
    /// The solver's *own* final objective value `F` — what it was
    /// maximizing: `f` for utility solvers, `g` for robust solvers, the
    /// constrained `f` for the BSM schemes and exact solvers.
    pub objective: f64,
    /// Per-group mean utilities `f_i(S)`.
    pub group_utilities: Vec<f64>,
    /// Internal `OPT'_f` estimate (0 when not computed).
    pub opt_f_estimate: f64,
    /// Internal `OPT'_g` estimate (0 when not computed).
    pub opt_g_estimate: f64,
    /// Whether the solver fell back to its fairness-first solution.
    pub fell_back: bool,
    /// Oracle (`group_gains`) evaluations performed.
    pub oracle_calls: u64,
    /// Selection wall-clock seconds (filled by the registry wrapper).
    pub seconds: f64,
    /// The substrate's marginal-gain evaluation strategy
    /// ([`crate::system::UtilitySystem::gain_kernel`]), filled by the
    /// registry wrapper: `"rescan"`, `"incremental_counters"`, or
    /// `"active_set"`. Diagnostic only — never affects values.
    pub gain_kernel: String,
    /// Solver-specific diagnostics (bisection rounds, hypervolume,
    /// accepted swaps, …) as labeled scalars.
    pub notes: Vec<(String, f64)>,
}

impl SolveReport {
    /// Builds a report from a solution evaluation; estimates, accounting
    /// fields, and notes start at their zero values.
    pub fn from_eval(
        solver: impl Into<String>,
        k: usize,
        tau: f64,
        items: Vec<ItemId>,
        eval: &Evaluation,
        objective: f64,
    ) -> Self {
        Self {
            solver: solver.into(),
            k,
            tau,
            items,
            f: eval.f,
            g: eval.g,
            objective,
            group_utilities: eval.group_means.clone(),
            opt_f_estimate: 0.0,
            opt_g_estimate: 0.0,
            fell_back: false,
            oracle_calls: 0,
            seconds: 0.0,
            gain_kernel: String::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a labeled diagnostic scalar.
    pub fn note(mut self, label: impl Into<String>, value: f64) -> Self {
        self.notes.push((label.into(), value));
        self
    }

    /// Whether the weak BSM constraint `g(S) ≥ τ·OPT'_g` holds (with a
    /// small numerical slack).
    pub fn weakly_feasible(&self) -> bool {
        self.g + 1e-9 >= self.tau * self.opt_g_estimate
    }
}

impl ToJson for SolveReport {
    fn to_json(&self) -> Value {
        obj([
            ("solver", Value::Str(self.solver.clone())),
            ("k", Value::Num(self.k as f64)),
            ("tau", Value::Num(self.tau)),
            (
                "items",
                Value::Arr(self.items.iter().map(|&v| Value::Num(v as f64)).collect()),
            ),
            ("f", Value::Num(self.f)),
            ("g", Value::Num(self.g)),
            ("objective", Value::Num(self.objective)),
            (
                "group_utilities",
                Value::Arr(
                    self.group_utilities
                        .iter()
                        .map(|&x| Value::Num(x))
                        .collect(),
                ),
            ),
            ("opt_f_estimate", Value::Num(self.opt_f_estimate)),
            ("opt_g_estimate", Value::Num(self.opt_g_estimate)),
            ("fell_back", Value::Bool(self.fell_back)),
            ("oracle_calls", Value::Num(self.oracle_calls as f64)),
            ("seconds", Value::Num(self.seconds)),
            ("gain_kernel", Value::Str(self.gain_kernel.clone())),
            (
                "notes",
                Value::Obj(
                    self.notes
                        .iter()
                        .map(|(label, x)| (label.clone(), Value::Num(*x)))
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for SolveReport {
    fn from_json(value: &Value) -> Result<Self, Error> {
        let num_field = |key: &str| -> Result<f64, Error> {
            value
                .get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| Error::msg(format!("report needs numeric '{key}'")))
        };
        let items: Vec<ItemId> = value
            .get("items")
            .and_then(Value::as_usize_vec)
            .ok_or_else(|| Error::msg("report needs an items array of non-negative integers"))?
            .into_iter()
            .map(|x| x as ItemId)
            .collect();
        let group_utilities = value
            .get("group_utilities")
            .and_then(Value::as_f64_vec)
            .ok_or_else(|| Error::msg("report needs a numeric group_utilities array"))?;
        let notes = match value.get("notes") {
            Some(Value::Obj(pairs)) => pairs
                .iter()
                .map(|(label, v)| {
                    v.as_f64()
                        .map(|x| (label.clone(), x))
                        .ok_or_else(|| Error::msg("notes must be numbers"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => Vec::new(),
        };
        Ok(Self {
            solver: value
                .get("solver")
                .and_then(Value::as_str)
                .ok_or_else(|| Error::msg("report needs a solver name"))?
                .to_string(),
            k: num_field("k")? as usize,
            tau: num_field("tau")?,
            items,
            f: num_field("f")?,
            g: num_field("g")?,
            objective: num_field("objective")?,
            group_utilities,
            opt_f_estimate: num_field("opt_f_estimate")?,
            opt_g_estimate: num_field("opt_g_estimate")?,
            fell_back: value
                .get("fell_back")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            oracle_calls: value
                .get("oracle_calls")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            seconds: value.get("seconds").and_then(Value::as_f64).unwrap_or(0.0),
            // Absent in pre-kernel-pass artifacts: default to unlabeled.
            gain_kernel: value
                .get("gain_kernel")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            notes,
        })
    }
}

/// Typed rejection of a scenario cell — the registry's alternative to
/// the panics/asserts the free functions used to rely on.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverError {
    /// No solver registered under that name.
    UnknownSolver {
        /// The requested name.
        name: String,
    },
    /// The solver requires a specific group count (SMSC: exactly 2).
    UnsupportedGroupCount {
        /// Solver name.
        solver: String,
        /// Required group count.
        required: usize,
        /// The system's group count.
        got: usize,
    },
    /// An exact solver refused a grid beyond its size cap.
    GridTooLarge {
        /// Solver name.
        solver: String,
        /// Human-readable cap description (e.g. `n <= 500`).
        cap: String,
        /// Human-readable instance size (e.g. `n = 20000`).
        size: String,
    },
    /// Parameters are invalid for this solver.
    InvalidParams {
        /// Solver name.
        solver: String,
        /// What is wrong.
        message: String,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::UnknownSolver { name } => {
                write!(f, "no solver registered under '{name}'")
            }
            SolverError::UnsupportedGroupCount {
                solver,
                required,
                got,
            } => write!(
                f,
                "{solver} requires exactly {required} groups (instance has {got})"
            ),
            SolverError::GridTooLarge { solver, cap, size } => {
                write!(f, "{solver} refuses instances beyond {cap} (got {size})")
            }
            SolverError::InvalidParams { solver, message } => {
                write!(f, "invalid parameters for {solver}: {message}")
            }
        }
    }
}

impl std::error::Error for SolverError {}

impl ToJson for SolverError {
    fn to_json(&self) -> Value {
        let kind = match self {
            SolverError::UnknownSolver { .. } => "unknown_solver",
            SolverError::UnsupportedGroupCount { .. } => "unsupported_group_count",
            SolverError::GridTooLarge { .. } => "grid_too_large",
            SolverError::InvalidParams { .. } => "invalid_params",
        };
        obj([
            ("kind", Value::Str(kind.into())),
            ("message", Value::Str(self.to_string())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SolveReport {
        let eval = Evaluation {
            f: 0.75,
            g: 0.5,
            group_means: vec![0.5, 0.9],
            size: 2,
        };
        let mut report = SolveReport::from_eval("BSM-TSGreedy", 2, 0.8, vec![0, 3], &eval, 0.75)
            .note("stage1_len", 1.0)
            .note("rounds", 12.0);
        report.opt_f_estimate = 0.75;
        report.opt_g_estimate = 5.0 / 9.0;
        report.fell_back = true;
        report.oracle_calls = 123;
        report.seconds = 0.001_5;
        report.gain_kernel = "incremental_counters".into();
        report
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let back = SolveReport::from_json_str(&report.to_json_pretty()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn weak_feasibility_uses_tau_and_estimate() {
        let mut report = sample_report();
        assert!(report.weakly_feasible()); // 0.5 >= 0.8 * 5/9 = 0.444
        report.tau = 1.0;
        assert!(!report.weakly_feasible()); // 0.5 < 5/9
    }

    #[test]
    fn errors_render_their_context() {
        let e = SolverError::UnsupportedGroupCount {
            solver: "SMSC".into(),
            required: 2,
            got: 5,
        };
        let text = e.to_string();
        assert!(text.contains("SMSC") && text.contains('2') && text.contains('5'));
        assert!(e.to_json().get("kind").is_some());
    }

    #[test]
    fn malformed_report_json_is_rejected() {
        assert!(SolveReport::from_json_str(r#"{"solver": "X"}"#).is_err());
        assert!(SolveReport::from_json_str("not json").is_err());
    }
}
