//! Uniform solver parameters for one grid cell.

use serde::json::{obj, Error, Value};
use serde::{FromJson, ToJson};

use crate::algorithms::greedy::GreedyVariant;

/// Parameters of one `(k, τ, ε, …)` scenario cell, understood by every
/// registered solver. Solvers read the fields they care about and
/// ignore the rest — `k` and `tau` are the paper's grid axes, the rest
/// carry sensible defaults so specs only override what they sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioParams {
    /// Cardinality constraint `k`.
    pub k: usize,
    /// Balance factor `τ ∈ [0, 1]`.
    pub tau: f64,
    /// Error parameter `ε` (BSM-Saturate bisection, sieve grid).
    pub epsilon: f64,
    /// Seed for randomized solvers (Random, StochasticGreedy-style
    /// sampling, RandomGreedy, GreeDi sharding).
    pub seed: u64,
    /// Greedy evaluation strategy for greedy-driven solvers.
    pub variant: GreedyVariant,
    /// Disable Saturate's exact tiny-instance path (pure approximation).
    pub approximate_saturate: bool,
    /// Node budget for the branch-and-bound exact solver.
    pub exact_node_limit: u64,
    /// Ground-set size cap for exact solvers: a grid with
    /// `num_items > exact_item_cap` is refused with a typed error
    /// instead of being attempted.
    pub exact_item_cap: usize,
    /// Subset-count cap for brute force: refused when `C(n, k)` exceeds
    /// this.
    pub exact_subset_limit: f64,
    /// Number of shards for GreeDi.
    pub shards: usize,
    /// MWU rounds.
    pub mwu_rounds: usize,
    /// Knapsack budget (unit costs); defaults to `k` when `None`.
    pub knapsack_budget: Option<f64>,
    /// τ grid for the Pareto sweep solver.
    pub sweep_taus: Vec<f64>,
}

impl ScenarioParams {
    /// Paper defaults for a `(k, τ)` cell: `ε = 0.05`, lazy-forward
    /// greedy, seed 42, 4 GreeDi shards, 30 MWU rounds, an 11-point
    /// Pareto τ grid, and exact caps of 500 items / 2·10⁶ subsets.
    pub fn new(k: usize, tau: f64) -> Self {
        Self {
            k,
            tau,
            epsilon: 0.05,
            seed: 42,
            variant: GreedyVariant::Lazy,
            approximate_saturate: false,
            exact_node_limit: 3_000_000,
            exact_item_cap: 500,
            exact_subset_limit: 2.0e6,
            shards: 4,
            mwu_rounds: 30,
            knapsack_budget: None,
            sweep_taus: (0..=10).map(|i| i as f64 / 10.0).collect(),
        }
    }

    /// Sets `ε`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the seed for randomized solvers.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn variant_to_json(v: &GreedyVariant) -> Value {
    match v {
        GreedyVariant::Naive => Value::Str("naive".into()),
        GreedyVariant::Lazy => Value::Str("lazy".into()),
        GreedyVariant::Stochastic { sample_size } => {
            obj([("stochastic_sample_size", Value::Num(*sample_size as f64))])
        }
    }
}

fn variant_from_json(v: &Value) -> Result<GreedyVariant, Error> {
    match v {
        Value::Str(s) if s == "naive" => Ok(GreedyVariant::Naive),
        Value::Str(s) if s == "lazy" => Ok(GreedyVariant::Lazy),
        Value::Obj(_) => {
            let sample_size = v
                .get("stochastic_sample_size")
                .and_then(Value::as_usize)
                .ok_or_else(|| Error::msg("stochastic variant needs stochastic_sample_size"))?;
            Ok(GreedyVariant::Stochastic { sample_size })
        }
        _ => Err(Error::msg(format!("unknown greedy variant {v}"))),
    }
}

impl ToJson for ScenarioParams {
    fn to_json(&self) -> Value {
        obj([
            ("k", Value::Num(self.k as f64)),
            ("tau", Value::Num(self.tau)),
            ("epsilon", Value::Num(self.epsilon)),
            ("seed", Value::Num(self.seed as f64)),
            ("variant", variant_to_json(&self.variant)),
            (
                "approximate_saturate",
                Value::Bool(self.approximate_saturate),
            ),
            ("exact_node_limit", Value::Num(self.exact_node_limit as f64)),
            ("exact_item_cap", Value::Num(self.exact_item_cap as f64)),
            ("exact_subset_limit", Value::Num(self.exact_subset_limit)),
            ("shards", Value::Num(self.shards as f64)),
            ("mwu_rounds", Value::Num(self.mwu_rounds as f64)),
            (
                "knapsack_budget",
                match self.knapsack_budget {
                    Some(b) => Value::Num(b),
                    None => Value::Null,
                },
            ),
            (
                "sweep_taus",
                Value::Arr(self.sweep_taus.iter().map(|&t| Value::Num(t)).collect()),
            ),
        ])
    }
}

impl FromJson for ScenarioParams {
    fn from_json(value: &Value) -> Result<Self, Error> {
        let k = value
            .get("k")
            .and_then(Value::as_usize)
            .ok_or_else(|| Error::msg("params need an integer k"))?;
        let tau = value
            .get("tau")
            .and_then(Value::as_f64)
            .ok_or_else(|| Error::msg("params need a numeric tau"))?;
        // Everything else is optional with the `new` defaults.
        let mut params = ScenarioParams::new(k, tau);
        if let Some(x) = value.get("epsilon").and_then(Value::as_f64) {
            params.epsilon = x;
        }
        if let Some(x) = value.get("seed").and_then(Value::as_u64) {
            params.seed = x;
        }
        if let Some(v) = value.get("variant") {
            params.variant = variant_from_json(v)?;
        }
        if let Some(x) = value.get("approximate_saturate").and_then(Value::as_bool) {
            params.approximate_saturate = x;
        }
        if let Some(x) = value.get("exact_node_limit").and_then(Value::as_u64) {
            params.exact_node_limit = x;
        }
        if let Some(x) = value.get("exact_item_cap").and_then(Value::as_usize) {
            params.exact_item_cap = x;
        }
        if let Some(x) = value.get("exact_subset_limit").and_then(Value::as_f64) {
            params.exact_subset_limit = x;
        }
        if let Some(x) = value.get("shards").and_then(Value::as_usize) {
            params.shards = x;
        }
        if let Some(x) = value.get("mwu_rounds").and_then(Value::as_usize) {
            params.mwu_rounds = x;
        }
        if let Some(v) = value.get("knapsack_budget") {
            params.knapsack_budget = v.as_f64();
        }
        if let Some(v) = value.get("sweep_taus") {
            params.sweep_taus = v
                .as_f64_vec()
                .ok_or_else(|| Error::msg("sweep_taus must be an array of numbers"))?;
        }
        Ok(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_round_trip_through_json() {
        let mut params = ScenarioParams::new(7, 0.8).with_epsilon(0.2).with_seed(9);
        params.variant = GreedyVariant::Stochastic { sample_size: 50 };
        params.knapsack_budget = Some(3.5);
        params.sweep_taus = vec![0.0, 0.5, 1.0];
        let back = ScenarioParams::from_json_str(&params.to_json_pretty()).unwrap();
        assert_eq!(back, params);
    }

    #[test]
    fn sparse_json_fills_defaults() {
        let params = ScenarioParams::from_json_str(r#"{"k": 4, "tau": 0.5}"#).unwrap();
        assert_eq!(params, ScenarioParams::new(4, 0.5));
        assert!(ScenarioParams::from_json_str(r#"{"tau": 0.5}"#).is_err());
    }
}
