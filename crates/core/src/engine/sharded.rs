//! The sharded solve tier: instances too large for one oracle build,
//! represented as per-shard oracles plus a merge phase.
//!
//! A [`ShardedInstance`] holds `p` independent [`ShardOracle`]s — each a
//! type-erased [`DynUtilitySystem`] over only its shard's items (local
//! ids `0..len` mapped to ascending global ids) — and a merge builder
//! that can materialize an oracle over any small global-id subset (the
//! round-2 candidate pool, at most `p·k` items). No single oracle over
//! the full ground set ever exists.
//!
//! [`ShardedInstance::solve_greedi`] runs two-round GreeDi over that
//! representation: round 1 greedily solves every shard against its own
//! sub-oracle (in parallel — the fold over shard results stays in shard
//! order, so thread count never changes the outcome), round 2 runs the
//! same restricted greedy over the union candidate pool against the
//! merge oracle, and the final answer is the better of round 2 and the
//! best single shard — exactly the decision rule of
//! [`crate::algorithms::distributed::greedi`].
//! [`ShardedInstance::solve_sieve`] streams the sorted union of all
//! shard members through the same `SieveCore` the centralized solver
//! drives, against the merge oracle over that union.
//!
//! **Determinism invariant (DESIGN.md §8):** when the shard members come
//! from [`shard_partition`] with the same `(n, p, seed)`, and every
//! sub-oracle reports bit-identical per-item gains to the centralized
//! oracle (which holds whenever shards carry the *full user universe*
//! and per-item oracle data is row-separable — true for all three
//! substrates), `solve_greedi` is **bit-identical** to `greedi` on the
//! centralized system: same items, same `f64` bits, same oracle-call
//! counts, at every thread count. `tests/sharded_equivalence.rs`
//! enforces this.
//!
//! [`SubsetSystem`] is the reference sub-oracle: a view of an existing
//! erased system restricted to a member list, forwarding every gain
//! query to the base oracle's rows. It is what the equivalence suite
//! compares real per-shard oracles (coverage over per-shard CSR slices,
//! shard-restricted `RisOracle`s, column-partitioned `FacilityOracle`s)
//! against, and the default shard/merge builder for
//! [`ShardedInstance::from_central`]. The substrate crates provide
//! *owned* restrictions of the same shape (`restrict`/`partition_shards`
//! on each oracle), which plug in through
//! [`ShardedInstance::from_restrictor`].
//!
//! The daemon serves this tier through the two native sessions here:
//! [`ShardedGreediSession`] steps one shard per `step()` (then one merge
//! step), [`ShardedSieveSession`] streams one union arrival per step.
//! Both own their sharded oracles and *ignore* the system passed to
//! `step`, but evaluate their `solution_at`/`finish` reports against the
//! passed (centralized) system — so a parked daemon session produces a
//! report byte-identical to the centralized solver's.

use std::sync::Arc;

use rayon::prelude::*;

use crate::aggregate::MeanUtility;
use crate::algorithms::distributed::{
    greedy_over_subset, merge_outcome, shard_partition, GreediOutcome,
};
use crate::algorithms::greedy::GreedyVariant;
use crate::algorithms::streaming::{SieveConfig, SieveCore, SieveOutcome};
use crate::items::ItemId;
use crate::metrics::evaluate;
use crate::system::UtilitySystem;

use super::erased::{DynState, DynUtilitySystem, ErasedSystem};
use super::params::ScenarioParams;
use super::report::{SolveReport, SolverError};
use super::session::{PartialSolution, SessionStatus, SolveSession};

/// Checks one shard's member list against the shard-oracle contract:
/// non-empty, strictly ascending (which implies deduplicated), and every
/// id `< n`. Returns [`SolverError::InvalidParams`] (attributed to
/// `solver`) on violation — the shared validation path for the
/// substrate-owned `restrict` implementations, so malformed shard specs
/// are typed rejections everywhere, never panics.
pub fn validate_shard_members(
    solver: &str,
    n: usize,
    members: &[ItemId],
) -> Result<(), SolverError> {
    let invalid = |message: String| SolverError::InvalidParams {
        solver: solver.to_string(),
        message,
    };
    if members.is_empty() {
        return Err(invalid("shard member list must not be empty".into()));
    }
    if !members.windows(2).all(|w| w[0] < w[1]) {
        return Err(invalid(
            "shard members must be strictly ascending (sorted, no duplicates)".into(),
        ));
    }
    if let Some(&bad) = members.iter().find(|&&v| v as usize >= n) {
        return Err(invalid(format!(
            "member id {bad} out of range for a {n}-item ground set"
        )));
    }
    Ok(())
}

/// Checks a full shard partition: at least one shard, every shard valid
/// per [`validate_shard_members`], no id owned by two shards, and the
/// shards jointly covering the whole ground set `0..n`. Typed
/// [`SolverError::InvalidParams`] on violation.
pub fn validate_shard_partition(
    solver: &str,
    n: usize,
    partition: &[Vec<ItemId>],
) -> Result<(), SolverError> {
    let invalid = |message: String| SolverError::InvalidParams {
        solver: solver.to_string(),
        message,
    };
    if partition.is_empty() {
        return Err(invalid("a partition needs at least one shard".into()));
    }
    let mut owner = vec![false; n];
    let mut total = 0usize;
    for (s, members) in partition.iter().enumerate() {
        validate_shard_members(solver, n, members)
            .map_err(|e| invalid(format!("shard {s}: {e}")))?;
        for &v in members {
            if owner[v as usize] {
                return Err(invalid(format!(
                    "item {v} is owned by two shards (overlap at shard {s})"
                )));
            }
            owner[v as usize] = true;
        }
        total += members.len();
    }
    if total != n {
        return Err(invalid(format!(
            "partition covers {total} of {n} items; shards must exactly cover the ground set"
        )));
    }
    Ok(())
}

/// A view of an erased system restricted to a sorted member list:
/// local item `j` is the base system's item `members[j]`, users and
/// groups pass through unchanged.
///
/// Because every query forwards to the base oracle's own rows, gains
/// through a `SubsetSystem` are bit-identical to gains through the base
/// system by construction — which makes it both the reference
/// implementation of the shard-oracle contract and the cheapest way to
/// shard an instance that *does* fit in memory (tests, medium scale).
pub struct SubsetSystem {
    base: Arc<dyn DynUtilitySystem>,
    members: Vec<ItemId>,
}

impl SubsetSystem {
    /// Restricts `base` to `members` (sorted and deduplicated here).
    ///
    /// Returns a typed error if any member id is out of the base
    /// system's range.
    pub fn new(base: Arc<dyn DynUtilitySystem>, members: Vec<ItemId>) -> Result<Self, SolverError> {
        let n = base.dyn_num_items();
        let mut members = members;
        members.sort_unstable();
        members.dedup();
        if let Some(&bad) = members.iter().find(|&&v| v as usize >= n) {
            return Err(SolverError::InvalidParams {
                solver: "SubsetSystem".into(),
                message: format!("member id {bad} out of range for a {n}-item base system"),
            });
        }
        Ok(Self { base, members })
    }

    /// The sorted global ids this view exposes as local ids `0..len`.
    pub fn members(&self) -> &[ItemId] {
        &self.members
    }
}

impl UtilitySystem for SubsetSystem {
    type Inner = DynState;

    fn num_items(&self) -> usize {
        self.members.len()
    }

    fn num_users(&self) -> usize {
        self.base.dyn_num_users()
    }

    fn group_sizes(&self) -> &[usize] {
        self.base.dyn_group_sizes()
    }

    fn init_inner(&self) -> Self::Inner {
        self.base.dyn_init()
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        self.base
            .dyn_group_gains(inner, self.members[item as usize], out);
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        // Translate to global ids and forward one batch, preserving any
        // parallel override the base substrate installed.
        let globals: Vec<ItemId> = items.iter().map(|&j| self.members[j as usize]).collect();
        self.base.dyn_group_gains_batch(inner, &globals, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        self.base.dyn_apply(inner, self.members[item as usize]);
    }

    fn gain_kernel(&self) -> &'static str {
        self.base.dyn_gain_kernel()
    }

    /// The view pins its base oracle resident, so it reports the base's
    /// footprint plus its own member table — a conservative estimate
    /// when several views share one base (each view counts the base it
    /// keeps alive).
    fn approx_bytes(&self) -> usize {
        self.base.dyn_approx_bytes() + self.members.len() * std::mem::size_of::<ItemId>()
    }
}

/// One shard of a [`ShardedInstance`]: a sub-oracle over exactly the
/// listed members (local id `j` ↔ `members[j]`, members ascending).
pub struct ShardOracle {
    /// Ascending global ids of the shard's items.
    pub members: Vec<ItemId>,
    /// Oracle whose item `j` is global item `members[j]`. Must report
    /// the full user universe (`num_users`, `group_sizes` equal across
    /// shards) so aggregate values stay comparable across shards.
    pub system: Arc<dyn DynUtilitySystem>,
}

/// Builds a merge oracle over an arbitrary ascending global-id subset —
/// the round-2 candidate pool. Receives at most `p·k` ids.
pub type MergeBuilder = Box<dyn Fn(&[ItemId]) -> Arc<dyn DynUtilitySystem> + Send + Sync>;

/// Builds shard `s`'s oracle on demand for an out-of-core instance —
/// typically by loading a spilled `CsrSlice` back from the scratch dir
/// and constructing the substrate oracle over it. Must be
/// deterministic: the same `(shard, members)` must produce an oracle
/// with bit-identical gains on every call, so reload order can never
/// change a solve.
pub type ShardBuilder =
    Box<dyn Fn(usize, &[ItemId]) -> Result<Arc<dyn DynUtilitySystem>, SolverError> + Send + Sync>;

/// How a [`ShardedInstance`] holds shard oracles between GreeDi rounds
/// (DESIGN.md §11).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpillPolicy {
    /// Every shard oracle stays resident for the instance's lifetime —
    /// the default, fastest when the shard sum fits in memory.
    InCore,
    /// Only the *active* shard's oracle is resident: non-active shard
    /// payloads live in the scratch dir (spilled slices), each shard is
    /// materialized from its [`ShardBuilder`] when its round-1 step
    /// runs and dropped as soon as the step finishes — so peak RSS
    /// tracks the largest single shard plus the merge pool, not the
    /// shard sum.
    OutOfCore,
}

/// A large instance represented as per-shard oracles plus a merge
/// builder; see the module docs for the determinism contract.
///
/// Shard oracles are held according to a [`SpillPolicy`]: resident
/// ([`ShardedInstance::new`] and friends) or rebuilt on demand from a
/// [`ShardBuilder`] ([`ShardedInstance::out_of_core`]).
pub struct ShardedInstance {
    /// Ascending global ids per shard.
    members: Vec<Vec<ItemId>>,
    /// Resident shard oracles (in-core policy); empty when out-of-core.
    resident: Vec<Arc<dyn DynUtilitySystem>>,
    /// On-demand shard builder (out-of-core policy).
    build: Option<ShardBuilder>,
    merge: MergeBuilder,
}

impl ShardedInstance {
    /// Assembles an instance from prebuilt shards.
    ///
    /// Validates the shard-oracle contract: at least one shard, members
    /// strictly ascending, each sub-oracle sized to its member list, and
    /// a consistent user universe across shards.
    pub fn new(shards: Vec<ShardOracle>, merge: MergeBuilder) -> Result<Self, SolverError> {
        let invalid = |message: String| SolverError::InvalidParams {
            solver: "ShardedInstance".into(),
            message,
        };
        if shards.is_empty() {
            return Err(invalid("at least one shard is required".into()));
        }
        for (i, shard) in shards.iter().enumerate() {
            if !shard.members.windows(2).all(|w| w[0] < w[1]) {
                return Err(invalid(format!(
                    "shard {i} members must be strictly ascending"
                )));
            }
            if shard.system.dyn_num_items() != shard.members.len() {
                return Err(invalid(format!(
                    "shard {i} oracle has {} items for {} members",
                    shard.system.dyn_num_items(),
                    shard.members.len()
                )));
            }
            if shard.system.dyn_num_users() != shards[0].system.dyn_num_users()
                || shard.system.dyn_group_sizes() != shards[0].system.dyn_group_sizes()
            {
                return Err(invalid(format!(
                    "shard {i} reports a different user universe than shard 0"
                )));
            }
        }
        let (members, resident) = shards.into_iter().map(|s| (s.members, s.system)).unzip();
        Ok(Self {
            members,
            resident,
            build: None,
            merge,
        })
    }

    /// Assembles an **out-of-core** instance: shard oracles are *not*
    /// held resident — each is materialized from `build` when its
    /// round-1 step runs (typically by loading a spilled slice back
    /// from the scratch dir) and dropped as soon as the step finishes.
    ///
    /// Member lists are validated eagerly (non-empty, strictly
    /// ascending); the builder's output is validated lazily at each
    /// materialization (item count must match the member list). Builder
    /// failures surface as typed errors through
    /// [`ShardedInstance::try_solve_greedi`] and the sharded sessions —
    /// a corrupt scratch dir must never panic a solve.
    pub fn out_of_core(
        members: Vec<Vec<ItemId>>,
        build: ShardBuilder,
        merge: MergeBuilder,
    ) -> Result<Self, SolverError> {
        let invalid = |message: String| SolverError::InvalidParams {
            solver: "ShardedInstance".into(),
            message,
        };
        if members.is_empty() {
            return Err(invalid("at least one shard is required".into()));
        }
        for (i, shard) in members.iter().enumerate() {
            if shard.is_empty() {
                return Err(invalid(format!("shard {i} member list must not be empty")));
            }
            if !shard.windows(2).all(|w| w[0] < w[1]) {
                return Err(invalid(format!(
                    "shard {i} members must be strictly ascending"
                )));
            }
        }
        Ok(Self {
            members,
            resident: Vec::new(),
            build: Some(build),
            merge,
        })
    }

    /// The instance's shard-residency policy.
    pub fn spill_policy(&self) -> SpillPolicy {
        if self.build.is_some() {
            SpillPolicy::OutOfCore
        } else {
            SpillPolicy::InCore
        }
    }

    /// Materializes shard `s`'s oracle: the resident `Arc` under
    /// [`SpillPolicy::InCore`], a fresh build from the scratch dir under
    /// [`SpillPolicy::OutOfCore`] — the caller drops the returned `Arc`
    /// to release the shard, which is what keeps only one shard resident
    /// at a time during a stepped out-of-core solve.
    pub fn shard_system(&self, s: usize) -> Result<Arc<dyn DynUtilitySystem>, SolverError> {
        match &self.build {
            None => Ok(Arc::clone(&self.resident[s])),
            Some(build) => {
                let system = build(s, &self.members[s])?;
                if system.dyn_num_items() != self.members[s].len() {
                    return Err(SolverError::InvalidParams {
                        solver: "ShardedInstance".into(),
                        message: format!(
                            "shard {s} builder produced {} items for {} members",
                            system.dyn_num_items(),
                            self.members[s].len()
                        ),
                    });
                }
                Ok(system)
            }
        }
    }

    /// Partitions the ground set `0..n` with [`shard_partition`] and
    /// builds every shard oracle through `restrict` — the substrate-
    /// agnostic assembly path. `restrict` receives an ascending member
    /// list and must return an oracle whose local item `j` is global
    /// item `members[j]`; the substrate-owned restrictions
    /// (`RisOracle::restrict`, `FacilityOracle::restrict`,
    /// `CoverageOracle::restrict`) and the [`SubsetSystem`] view all fit
    /// this shape. Shard builds run embarrassingly parallel on the
    /// rayon pool; the same `restrict` then serves as the merge builder.
    pub fn from_restrictor<F>(
        n: usize,
        shards: usize,
        seed: u64,
        restrict: F,
    ) -> Result<Self, SolverError>
    where
        F: Fn(&[ItemId]) -> Result<Arc<dyn DynUtilitySystem>, SolverError> + Send + Sync + 'static,
    {
        let mut partition = shard_partition(n, shards, seed);
        for members in &mut partition {
            members.sort_unstable();
        }
        // Embarrassingly parallel shard builds: each restriction touches
        // only its own members' rows.
        let shard_oracles = partition
            .into_par_iter()
            .map(|members| {
                let system = restrict(&members)?;
                Ok(ShardOracle { members, system })
            })
            .collect::<Vec<Result<ShardOracle, SolverError>>>()
            .into_iter()
            .collect::<Result<Vec<_>, SolverError>>()?;
        let merge: MergeBuilder =
            Box::new(move |pool| restrict(pool).expect("pool ids come from shard members"));
        Self::new(shard_oracles, merge)
    }

    /// Shards an in-memory erased system with [`shard_partition`] — each
    /// shard and the merge phase become [`SubsetSystem`] views of the
    /// base. The reference path for equivalence tests and for instances
    /// that fit centrally anyway.
    pub fn from_central(
        base: Arc<dyn DynUtilitySystem>,
        shards: usize,
        seed: u64,
    ) -> Result<Self, SolverError> {
        let n = base.dyn_num_items();
        Self::from_restrictor(n, shards, seed, move |members| {
            Ok(Arc::new(SubsetSystem::new(
                Arc::clone(&base),
                members.to_vec(),
            )?))
        })
    }

    /// Number of shards `p`.
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// Total items across all shards.
    pub fn num_items(&self) -> usize {
        self.members.iter().map(|m| m.len()).sum()
    }

    /// Ascending global ids of shard `s`'s items.
    pub fn shard_members(&self, s: usize) -> &[ItemId] {
        &self.members[s]
    }

    /// The sorted union of all shard members.
    pub fn union_members(&self) -> Vec<ItemId> {
        let mut union: Vec<ItemId> = Vec::with_capacity(self.num_items());
        for members in &self.members {
            union.extend_from_slice(members);
        }
        union.sort_unstable();
        union.dedup();
        union
    }

    /// Materializes the merge oracle over the whole ground set (the
    /// sorted union of all shard members) — what the streaming path
    /// solves against. When the shards partition `0..n`, local ids in
    /// this oracle coincide with global ids.
    pub fn union_system(&self) -> (Vec<ItemId>, Arc<dyn DynUtilitySystem>) {
        let union = self.union_members();
        let system = (self.merge)(&union);
        (union, system)
    }

    /// Two-round GreeDi over the sharded representation; see the module
    /// docs for the bit-identity contract with
    /// [`crate::algorithms::distributed::greedi`].
    ///
    /// Round 1 runs shards in parallel; results are folded in shard
    /// order, so the outcome is identical at every thread count.
    ///
    /// Panics if a shard builder fails (only possible for
    /// [`SpillPolicy::OutOfCore`] instances); use
    /// [`Self::try_solve_greedi`] to handle scratch-I/O errors.
    pub fn solve_greedi(&self, k: usize, variant: GreedyVariant) -> GreediOutcome {
        self.try_solve_greedi(k, variant)
            .expect("in-core sharded GreeDi cannot fail to materialize a shard")
    }

    /// Fallible [`Self::solve_greedi`]: out-of-core instances rebuild
    /// each shard oracle from scratch storage, which can fail with a
    /// typed error instead of a panic.
    ///
    /// For [`SpillPolicy::OutOfCore`] instances round 1 runs the shards
    /// *sequentially*, holding exactly one rebuilt shard oracle at a
    /// time, so peak memory tracks the largest single shard instead of
    /// the sum. The fold is in shard order either way, so the outcome
    /// is bit-identical across policies and thread counts.
    pub fn try_solve_greedi(
        &self,
        k: usize,
        variant: GreedyVariant,
    ) -> Result<GreediOutcome, SolverError> {
        // Round 1: independent restricted greedy per shard, mapped back
        // to global ids.
        let run_shard =
            |members: &[ItemId], system: &Arc<dyn DynUtilitySystem>| -> (Vec<ItemId>, u64, f64) {
                let erased = ErasedSystem(system.as_ref());
                let f = MeanUtility::new(system.dyn_num_users());
                let locals: Vec<ItemId> = (0..members.len() as ItemId).collect();
                let run = greedy_over_subset(&erased, &f, &locals, k, variant.clone());
                let globals: Vec<ItemId> = run.0.iter().map(|&j| members[j as usize]).collect();
                (globals, run.1, run.2)
            };
        let runs: Vec<(Vec<ItemId>, u64, f64)> = match self.spill_policy() {
            SpillPolicy::InCore => self
                .members
                .iter()
                .zip(self.resident.iter())
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|(members, system)| run_shard(members, system))
                .collect(),
            SpillPolicy::OutOfCore => {
                // One shard resident at a time: materialize, solve,
                // drop before touching the next.
                let mut runs = Vec::with_capacity(self.num_shards());
                for s in 0..self.num_shards() {
                    let system = self.shard_system(s)?;
                    runs.push(run_shard(&self.members[s], &system));
                }
                runs
            }
        };

        let mut oracle_calls = 0u64;
        let mut pool: Vec<ItemId> = Vec::with_capacity(self.num_shards() * k);
        let mut best_shard: (f64, Vec<ItemId>) = (f64::NEG_INFINITY, Vec::new());
        for run in runs {
            oracle_calls += run.1;
            let value = run.2;
            if value > best_shard.0 {
                best_shard = (value, run.0.clone());
            }
            pool.extend(run.0);
        }

        // Round 2 over the union pool against the merge oracle. The
        // pool is sorted/deduplicated here (in global-id order) exactly
        // as `greedy_over_subset` would, so local ids in the merge
        // oracle scan in the same order the centralized round 2 scans
        // global ids.
        pool.sort_unstable();
        pool.dedup();
        let merge_system = (self.merge)(&pool);
        debug_assert_eq!(merge_system.dyn_num_items(), pool.len());
        let erased = ErasedSystem(merge_system.as_ref());
        let f = MeanUtility::new(merge_system.dyn_num_users());
        let locals: Vec<ItemId> = (0..pool.len() as ItemId).collect();
        let run2 = greedy_over_subset(&erased, &f, &locals, k, variant);
        oracle_calls += run2.1;
        let globals2: Vec<ItemId> = run2.0.iter().map(|&j| pool[j as usize]).collect();
        Ok(merge_outcome(
            (globals2, run2.1, run2.2),
            best_shard,
            oracle_calls,
        ))
    }

    /// Sieve-Streaming over the sharded representation: streams the
    /// sorted union of shard members through the same `SieveCore` the
    /// centralized solver drives, against the merge oracle over that
    /// union. Because the shards partition `0..n` and the stream visits
    /// items in ascending id order, this is bit-identical to
    /// [`crate::algorithms::streaming::sieve_streaming`] on the
    /// centralized system (items reported as global ids).
    pub fn solve_sieve(&self, cfg: &SieveConfig) -> SieveOutcome {
        let (union, system) = self.union_system();
        let erased = ErasedSystem(system.as_ref());
        let f = MeanUtility::new(system.dyn_num_users());
        let mut core = SieveCore::new(&erased, cfg);
        while !core.done() {
            core.step(&erased, &f);
        }
        let mut run = core.outcome();
        run.items = run.items.iter().map(|&j| union[j as usize]).collect();
        run
    }
}

/// Native GreeDi session over a [`ShardedInstance`]: one shard's
/// restricted greedy per step, then one merge step — the daemon's
/// `POST /solve/anytime` path for instances held as shard oracles.
///
/// Unlike [`super::session::GreediSession`], this session *owns* its
/// oracles (inside the instance) and ignores the system passed to
/// `step`; only `solution_at`/`finish` use the passed (centralized)
/// system, to evaluate the final item set and stamp the gain kernel —
/// which makes the finish report byte-identical to the centralized
/// `GreeDi` solver's for the same recipe.
pub struct ShardedGreediSession {
    instance: Arc<ShardedInstance>,
    tau: f64,
    k: usize,
    shards: usize,
    variant: GreedyVariant,
    next_shard: usize,
    oracle_calls: u64,
    pool: Vec<ItemId>,
    best_shard: (f64, Vec<ItemId>),
    outcome: Option<GreediOutcome>,
    /// First shard-build failure (out-of-core scratch I/O); terminal —
    /// surfaced by `solution_at`/`finish` instead of a panic.
    failure: Option<SolverError>,
    steps: usize,
}

impl ShardedGreediSession {
    /// Opens a session over `instance` (parameters must already be
    /// validated; no oracle work until the first step). The instance's
    /// own shard count drives the schedule — `params.shards` is ignored
    /// here because the partition is already baked into the instance.
    pub fn open(instance: Arc<ShardedInstance>, params: &ScenarioParams) -> Self {
        let shards = instance.num_shards();
        Self {
            instance,
            tau: params.tau,
            k: params.k,
            shards,
            variant: params.variant.clone(),
            next_shard: 0,
            oracle_calls: 0,
            pool: Vec::with_capacity(shards * params.k),
            best_shard: (f64::NEG_INFINITY, Vec::new()),
            outcome: None,
            failure: None,
            steps: 0,
        }
    }
}

impl SolveSession for ShardedGreediSession {
    fn solver(&self) -> &'static str {
        "GreeDi"
    }

    fn done(&self) -> bool {
        self.outcome.is_some() || self.failure.is_some()
    }

    fn rounds(&self) -> usize {
        self.steps
    }

    fn step(&mut self, system: &dyn DynUtilitySystem) -> SessionStatus {
        // The sharded session owns its oracles; the passed system is
        // only used by `solution_at`.
        let _ = system;
        if self.done() {
            // Post-done steps are no-ops and must not inflate the round
            // counter (finish() always issues one trailing step).
            return SessionStatus::Done;
        }
        if self.next_shard < self.instance.num_shards() {
            // Round 1, one shard: exactly the fold `solve_greedi`
            // performs, against the shard's own sub-oracle. Out-of-core
            // instances rebuild the oracle from scratch storage here
            // and drop it at the end of the step, so only one shard is
            // ever resident between steps.
            let system = match self.instance.shard_system(self.next_shard) {
                Ok(system) => system,
                Err(err) => {
                    self.failure = Some(err);
                    return SessionStatus::Done;
                }
            };
            let members = self.instance.shard_members(self.next_shard);
            let erased = ErasedSystem(system.as_ref());
            let f = MeanUtility::new(system.dyn_num_users());
            let locals: Vec<ItemId> = (0..members.len() as ItemId).collect();
            let run = greedy_over_subset(&erased, &f, &locals, self.k, self.variant.clone());
            let globals: Vec<ItemId> = run.0.iter().map(|&j| members[j as usize]).collect();
            self.oracle_calls += run.1;
            let value = run.2;
            if value > self.best_shard.0 {
                self.best_shard = (value, globals.clone());
            }
            self.pool.extend(globals);
            self.next_shard += 1;
            self.steps += 1;
            SessionStatus::Running
        } else {
            // Round 2 on the merged pool against the merge oracle, then
            // the final comparison.
            self.pool.sort_unstable();
            self.pool.dedup();
            let merge_system = (self.instance.merge)(&self.pool);
            let erased = ErasedSystem(merge_system.as_ref());
            let f = MeanUtility::new(merge_system.dyn_num_users());
            let locals: Vec<ItemId> = (0..self.pool.len() as ItemId).collect();
            let run2 = greedy_over_subset(&erased, &f, &locals, self.k, self.variant.clone());
            self.oracle_calls += run2.1;
            let globals2: Vec<ItemId> = run2.0.iter().map(|&j| self.pool[j as usize]).collect();
            self.outcome = Some(merge_outcome(
                (globals2, run2.1, run2.2),
                self.best_shard.clone(),
                self.oracle_calls,
            ));
            self.steps += 1;
            SessionStatus::Done
        }
    }

    fn snapshot(&self) -> PartialSolution {
        let (items, objective) = match &self.outcome {
            Some(run) => (run.items.clone(), run.value),
            None if self.best_shard.0.is_finite() => (self.best_shard.1.clone(), self.best_shard.0),
            None => (Vec::new(), 0.0),
        };
        PartialSolution {
            round: self.steps,
            items,
            group_sums: Vec::new(),
            objective,
            oracle_calls: self.oracle_calls,
            done: self.done(),
        }
    }

    fn solution_at(
        &self,
        system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError> {
        if let Some(err) = &self.failure {
            return Err(SolverError::InvalidParams {
                solver: self.solver().to_string(),
                message: format!("shard materialization failed: {err}"),
            });
        }
        let run = match (k == self.k, &self.outcome) {
            (true, Some(run)) => run,
            (false, _) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: format!(
                        "GreeDi sessions only serve their own budget k = {} (asked {k})",
                        self.k
                    ),
                })
            }
            (_, None) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: "session not finished; step it to completion first".into(),
                })
            }
        };
        // Mirrors `GreediSolver::solve` field for field.
        let erased = ErasedSystem(system);
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.solver(),
            k,
            self.tau,
            run.items.clone(),
            &eval,
            run.value,
        )
        .note("shards", self.shards as f64)
        .note("best_shard_value", run.best_shard_value);
        report.oracle_calls = run.oracle_calls;
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(report)
    }

    fn finish(&mut self, system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError> {
        while self.step(system) == SessionStatus::Running {}
        self.solution_at(system, self.k)
    }
}

/// Native Sieve-Streaming session over a [`ShardedInstance`]: one union
/// arrival per step, against the instance's merge oracle over the
/// sorted union of shard members.
///
/// Owns its oracle like [`ShardedGreediSession`] and uses the passed
/// (centralized) system only for the final report evaluation, so the
/// finish report is byte-identical to the centralized `SieveStreaming`
/// solver's for the same recipe.
pub struct ShardedSieveSession {
    tau: f64,
    k: usize,
    union: Vec<ItemId>,
    system: Arc<dyn DynUtilitySystem>,
    core: SieveCore<DynState>,
    steps: usize,
}

impl ShardedSieveSession {
    /// Opens a session over `instance` (parameters must already be
    /// validated). Materializes the union merge oracle once.
    pub fn open(instance: &ShardedInstance, params: &ScenarioParams) -> Self {
        let (union, system) = instance.union_system();
        let cfg = SieveConfig {
            k: params.k,
            epsilon: params.epsilon,
        };
        let core = SieveCore::new(&ErasedSystem(system.as_ref()), &cfg);
        Self {
            tau: params.tau,
            k: params.k,
            union,
            system,
            core,
            steps: 0,
        }
    }
}

impl SolveSession for ShardedSieveSession {
    fn solver(&self) -> &'static str {
        "SieveStreaming"
    }

    fn done(&self) -> bool {
        self.core.done()
    }

    fn rounds(&self) -> usize {
        self.steps
    }

    fn step(&mut self, system: &dyn DynUtilitySystem) -> SessionStatus {
        // The sharded session streams against its own union oracle; the
        // passed system is only used by `solution_at`.
        let _ = system;
        if self.core.done() {
            // Post-done steps are no-ops and must not inflate the round
            // counter (finish() always issues one trailing step).
            return SessionStatus::Done;
        }
        let erased = ErasedSystem(self.system.as_ref());
        let f = MeanUtility::new(self.system.dyn_num_users());
        self.core.step(&erased, &f);
        self.steps += 1;
        if self.core.done() {
            SessionStatus::Done
        } else {
            SessionStatus::Running
        }
    }

    fn snapshot(&self) -> PartialSolution {
        let run = self.core.outcome();
        let items: Vec<ItemId> = run.items.iter().map(|&j| self.union[j as usize]).collect();
        PartialSolution {
            round: self.steps,
            items,
            group_sums: Vec::new(),
            objective: run.value,
            oracle_calls: run.oracle_calls,
            done: self.core.done(),
        }
    }

    fn solution_at(
        &self,
        system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError> {
        if k != self.k {
            return Err(SolverError::InvalidParams {
                solver: self.solver().to_string(),
                message: format!(
                    "SieveStreaming sessions only serve their own budget k = {} (asked {k})",
                    self.k
                ),
            });
        }
        if !self.core.done() {
            return Err(SolverError::InvalidParams {
                solver: self.solver().to_string(),
                message: "session not finished; step it to completion first".into(),
            });
        }
        // Mirrors `SieveStreamingSolver::solve` field for field.
        let run = self.core.outcome();
        let items: Vec<ItemId> = run.items.iter().map(|&j| self.union[j as usize]).collect();
        let erased = ErasedSystem(system);
        let eval = evaluate(&erased, &items);
        let mut report =
            SolveReport::from_eval(self.solver(), k, self.tau, items, &eval, run.value)
                .note("candidates", run.candidates as f64);
        report.oracle_calls = run.oracle_calls;
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(report)
    }

    fn finish(&mut self, system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError> {
        while self.step(system) == SessionStatus::Running {}
        self.solution_at(system, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::distributed::{greedi, GreediConfig};
    use crate::algorithms::greedy::{greedy, GreedyConfig};
    use crate::algorithms::streaming::sieve_streaming;
    use crate::toy;

    fn central(seed: u64) -> Arc<dyn DynUtilitySystem> {
        Arc::new(toy::random_coverage(60, 150, 3, 0.08, seed))
    }

    #[test]
    fn subset_system_gains_match_the_base_rows() {
        let base = central(3);
        let members = vec![5u32, 9, 12, 40];
        let sub = SubsetSystem::new(Arc::clone(&base), members.clone()).unwrap();
        let c = base.dyn_num_groups();
        let state = base.dyn_init();
        let sub_state = sub.init_inner();
        let mut through = vec![0.0; c];
        let mut direct = vec![0.0; c];
        for (local, &global) in members.iter().enumerate() {
            sub.group_gains(&sub_state, local as ItemId, &mut through);
            base.dyn_group_gains(&state, global, &mut direct);
            let same = through
                .iter()
                .zip(&direct)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "local {local} / global {global}");
        }
    }

    #[test]
    fn sharded_greedi_is_bit_identical_to_centralized_greedi() {
        for seed in 1..4u64 {
            let base = central(seed);
            for shards in [1usize, 2, 4, 8] {
                let instance = ShardedInstance::from_central(Arc::clone(&base), shards, seed)
                    .expect("valid sharding");
                let sharded = instance.solve_greedi(6, GreedyVariant::Lazy);
                let mut cfg = GreediConfig::new(6);
                cfg.shards = shards;
                cfg.seed = seed;
                let erased = ErasedSystem(base.as_ref());
                let f = MeanUtility::new(base.dyn_num_users());
                let one_shot = greedi(&erased, &f, &cfg).expect("valid config");
                assert_eq!(sharded.items, one_shot.items, "seed {seed} p {shards}");
                assert_eq!(sharded.value.to_bits(), one_shot.value.to_bits());
                assert_eq!(
                    sharded.best_shard_value.to_bits(),
                    one_shot.best_shard_value.to_bits()
                );
                assert_eq!(sharded.oracle_calls, one_shot.oracle_calls);
            }
        }
    }

    #[test]
    fn sharded_sieve_is_bit_identical_to_centralized_sieve() {
        for shards in [1usize, 3, 4] {
            let base = central(11);
            let instance =
                ShardedInstance::from_central(Arc::clone(&base), shards, 11).expect("valid");
            let cfg = SieveConfig::new(6);
            let sharded = instance.solve_sieve(&cfg);
            let erased = ErasedSystem(base.as_ref());
            let f = MeanUtility::new(base.dyn_num_users());
            let central = sieve_streaming(&erased, &f, &cfg).expect("valid config");
            assert_eq!(sharded.items, central.items, "p {shards}");
            assert_eq!(sharded.value.to_bits(), central.value.to_bits());
            assert_eq!(sharded.candidates, central.candidates);
            assert_eq!(sharded.oracle_calls, central.oracle_calls);
        }
    }

    #[test]
    fn single_shard_solve_equals_centralized_greedy_value() {
        let base = central(7);
        let instance = ShardedInstance::from_central(Arc::clone(&base), 1, 0).unwrap();
        let out = instance.solve_greedi(5, GreedyVariant::Naive);
        let erased = ErasedSystem(base.as_ref());
        let f = MeanUtility::new(base.dyn_num_users());
        let plain = greedy(&erased, &f, &GreedyConfig::naive(5));
        assert_eq!(out.value.to_bits(), plain.value.to_bits());
    }

    #[test]
    fn sharded_sessions_match_one_shot_solves() {
        let base = central(5);
        let instance =
            Arc::new(ShardedInstance::from_central(Arc::clone(&base), 4, 5).expect("valid"));
        let params = {
            let mut p = ScenarioParams::new(6, 0.0);
            p.seed = 5;
            p.shards = 4;
            p
        };

        let mut session = ShardedGreediSession::open(Arc::clone(&instance), &params);
        assert_eq!(session.rounds(), 0);
        let report = session.finish(base.as_ref()).expect("finishes");
        // One step per shard + one merge step.
        assert_eq!(session.rounds(), 5);
        let one_shot = instance.solve_greedi(6, params.variant.clone());
        assert_eq!(report.items, one_shot.items);
        assert_eq!(report.objective.to_bits(), one_shot.value.to_bits());
        assert_eq!(report.oracle_calls, one_shot.oracle_calls);

        let mut sieve = ShardedSieveSession::open(&instance, &params);
        let report = sieve.finish(base.as_ref()).expect("finishes");
        let cfg = SieveConfig {
            k: 6,
            epsilon: params.epsilon,
        };
        let one_shot = instance.solve_sieve(&cfg);
        assert_eq!(report.items, one_shot.items);
        assert_eq!(report.objective.to_bits(), one_shot.value.to_bits());
        assert_eq!(report.oracle_calls, one_shot.oracle_calls);
        // One step per streamed item.
        assert_eq!(sieve.rounds(), instance.num_items());
    }

    #[test]
    fn out_of_core_solve_is_bit_identical_to_in_core() {
        for seed in [2u64, 9] {
            for shards in [2usize, 4] {
                let base = central(seed);
                let in_core = ShardedInstance::from_central(Arc::clone(&base), shards, seed)
                    .expect("valid sharding");
                assert_eq!(in_core.spill_policy(), SpillPolicy::InCore);
                let members: Vec<Vec<ItemId>> = (0..in_core.num_shards())
                    .map(|s| in_core.shard_members(s).to_vec())
                    .collect();
                let build_base = Arc::clone(&base);
                let build: ShardBuilder = Box::new(move |_s, members| {
                    Ok(Arc::new(SubsetSystem::new(
                        Arc::clone(&build_base),
                        members.to_vec(),
                    )?))
                });
                let merge_base = Arc::clone(&base);
                let merge: MergeBuilder = Box::new(move |pool| {
                    Arc::new(SubsetSystem::new(Arc::clone(&merge_base), pool.to_vec()).unwrap())
                });
                let out_of_core =
                    ShardedInstance::out_of_core(members, build, merge).expect("valid shards");
                assert_eq!(out_of_core.spill_policy(), SpillPolicy::OutOfCore);

                let a = in_core.solve_greedi(6, GreedyVariant::Lazy);
                let b = out_of_core
                    .try_solve_greedi(6, GreedyVariant::Lazy)
                    .expect("builder cannot fail here");
                assert_eq!(a.items, b.items, "seed {seed} p {shards}");
                assert_eq!(a.value.to_bits(), b.value.to_bits());
                assert_eq!(a.best_shard_value.to_bits(), b.best_shard_value.to_bits());
                assert_eq!(a.oracle_calls, b.oracle_calls);

                // The stepped session over the out-of-core instance
                // reaches the same outcome (one rebuild per step).
                let params = {
                    let mut p = ScenarioParams::new(6, 0.0);
                    p.seed = seed;
                    p.shards = shards;
                    p
                };
                let mut session = ShardedGreediSession::open(Arc::new(out_of_core), &params);
                let report = session.finish(base.as_ref()).expect("finishes");
                assert_eq!(report.items, a.items);
                assert_eq!(report.objective.to_bits(), a.value.to_bits());
                assert_eq!(report.oracle_calls, a.oracle_calls);
            }
        }
    }

    #[test]
    fn out_of_core_builder_failures_are_typed_errors() {
        let base = central(4);
        let instance = ShardedInstance::from_central(Arc::clone(&base), 3, 4).expect("valid");
        let members: Vec<Vec<ItemId>> = (0..instance.num_shards())
            .map(|s| instance.shard_members(s).to_vec())
            .collect();
        let build: ShardBuilder = Box::new(|s, _members| {
            Err(SolverError::InvalidParams {
                solver: "test".into(),
                message: format!("scratch file for shard {s} is corrupt"),
            })
        });
        let merge_base = Arc::clone(&base);
        let merge: MergeBuilder = Box::new(move |pool| {
            Arc::new(SubsetSystem::new(Arc::clone(&merge_base), pool.to_vec()).unwrap())
        });
        let broken = ShardedInstance::out_of_core(members, build, merge).expect("members valid");
        assert!(broken.try_solve_greedi(4, GreedyVariant::Lazy).is_err());

        // The stepped session surfaces the failure as a typed error
        // through finish(), never a panic.
        let params = {
            let mut p = ScenarioParams::new(4, 0.0);
            p.shards = 3;
            p
        };
        let mut session = ShardedGreediSession::open(Arc::new(broken), &params);
        let err = session.finish(base.as_ref());
        assert!(err.is_err(), "builder failure must surface from finish()");
        assert!(session.done());
    }

    #[test]
    fn malformed_shards_are_typed_rejections() {
        let base = central(1);
        assert!(SubsetSystem::new(Arc::clone(&base), vec![1000]).is_err());
        let merge_base = Arc::clone(&base);
        let merge: MergeBuilder = Box::new(move |pool| {
            Arc::new(SubsetSystem::new(Arc::clone(&merge_base), pool.to_vec()).unwrap())
        });
        assert!(ShardedInstance::new(Vec::new(), merge).is_err());
        // Unsorted members are rejected.
        let sub = SubsetSystem::new(Arc::clone(&base), vec![0, 1, 2]).unwrap();
        let shard = ShardOracle {
            members: vec![2, 1, 0],
            system: Arc::new(sub),
        };
        let merge_base = Arc::clone(&base);
        let merge: MergeBuilder = Box::new(move |pool| {
            Arc::new(SubsetSystem::new(Arc::clone(&merge_base), pool.to_vec()).unwrap())
        });
        assert!(ShardedInstance::new(vec![shard], merge).is_err());
    }

    #[test]
    fn partition_validation_rejects_each_malformation() {
        let n = 8usize;
        // Valid exact cover passes.
        assert!(validate_shard_partition("t", n, &[vec![0, 2, 4, 6], vec![1, 3, 5, 7]]).is_ok());
        // Empty partition list.
        assert!(validate_shard_partition("t", n, &[]).is_err());
        // Empty shard.
        assert!(validate_shard_partition("t", n, &[(0..8).collect(), vec![]]).is_err());
        // Not ascending.
        assert!(validate_shard_members("t", n, &[3, 1]).is_err());
        // Duplicate inside a shard.
        assert!(validate_shard_members("t", n, &[1, 1, 2]).is_err());
        // Out of range.
        assert!(validate_shard_members("t", n, &[7, 8]).is_err());
        // Overlap across shards.
        assert!(
            validate_shard_partition("t", n, &[vec![0, 1, 2, 3], vec![3, 4, 5, 6, 7]]).is_err()
        );
        // Not an exact cover.
        assert!(validate_shard_partition("t", n, &[vec![0, 1, 2], vec![4, 5, 6, 7]]).is_err());
    }
}
