//! The sharded solve tier: instances too large for one oracle build,
//! represented as per-shard oracles plus a merge phase.
//!
//! A [`ShardedInstance`] holds `p` independent [`ShardOracle`]s — each a
//! type-erased [`DynUtilitySystem`] over only its shard's items (local
//! ids `0..len` mapped to ascending global ids) — and a merge builder
//! that can materialize an oracle over any small global-id subset (the
//! round-2 candidate pool, at most `p·k` items). No single oracle over
//! the full ground set ever exists.
//!
//! [`ShardedInstance::solve_greedi`] runs two-round GreeDi over that
//! representation: round 1 greedily solves every shard against its own
//! sub-oracle (in parallel — the fold over shard results stays in shard
//! order, so thread count never changes the outcome), round 2 runs the
//! same restricted greedy over the union candidate pool against the
//! merge oracle, and the final answer is the better of round 2 and the
//! best single shard — exactly the decision rule of
//! [`crate::algorithms::distributed::greedi`].
//!
//! **Determinism invariant (DESIGN.md §8):** when the shard members come
//! from [`shard_partition`] with the same `(n, p, seed)`, and every
//! sub-oracle reports bit-identical per-item gains to the centralized
//! oracle (which holds whenever shards carry the *full user universe*
//! and per-item oracle data is row-separable — true for all three
//! substrates), `solve_greedi` is **bit-identical** to `greedi` on the
//! centralized system: same items, same `f64` bits, same oracle-call
//! counts, at every thread count. `tests/sharded_equivalence.rs`
//! enforces this.
//!
//! [`SubsetSystem`] is the reference sub-oracle: a view of an existing
//! erased system restricted to a member list, forwarding every gain
//! query to the base oracle's rows. It is what the equivalence suite
//! compares real per-shard oracles (e.g. coverage over per-shard CSR
//! slices) against, and the default shard/merge builder for
//! [`ShardedInstance::from_central`].

use std::sync::Arc;

use rayon::prelude::*;

use crate::aggregate::MeanUtility;
use crate::algorithms::distributed::{
    greedy_over_subset, merge_outcome, shard_partition, GreediOutcome,
};
use crate::algorithms::greedy::GreedyVariant;
use crate::items::ItemId;
use crate::system::UtilitySystem;

use super::erased::{DynState, DynUtilitySystem, ErasedSystem};
use super::report::SolverError;

/// A view of an erased system restricted to a sorted member list:
/// local item `j` is the base system's item `members[j]`, users and
/// groups pass through unchanged.
///
/// Because every query forwards to the base oracle's own rows, gains
/// through a `SubsetSystem` are bit-identical to gains through the base
/// system by construction — which makes it both the reference
/// implementation of the shard-oracle contract and the cheapest way to
/// shard an instance that *does* fit in memory (tests, medium scale).
pub struct SubsetSystem {
    base: Arc<dyn DynUtilitySystem>,
    members: Vec<ItemId>,
}

impl SubsetSystem {
    /// Restricts `base` to `members` (sorted and deduplicated here).
    ///
    /// Returns a typed error if any member id is out of the base
    /// system's range.
    pub fn new(base: Arc<dyn DynUtilitySystem>, members: Vec<ItemId>) -> Result<Self, SolverError> {
        let n = base.dyn_num_items();
        let mut members = members;
        members.sort_unstable();
        members.dedup();
        if let Some(&bad) = members.iter().find(|&&v| v as usize >= n) {
            return Err(SolverError::InvalidParams {
                solver: "SubsetSystem".into(),
                message: format!("member id {bad} out of range for a {n}-item base system"),
            });
        }
        Ok(Self { base, members })
    }

    /// The sorted global ids this view exposes as local ids `0..len`.
    pub fn members(&self) -> &[ItemId] {
        &self.members
    }
}

impl UtilitySystem for SubsetSystem {
    type Inner = DynState;

    fn num_items(&self) -> usize {
        self.members.len()
    }

    fn num_users(&self) -> usize {
        self.base.dyn_num_users()
    }

    fn group_sizes(&self) -> &[usize] {
        self.base.dyn_group_sizes()
    }

    fn init_inner(&self) -> Self::Inner {
        self.base.dyn_init()
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        self.base
            .dyn_group_gains(inner, self.members[item as usize], out);
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        // Translate to global ids and forward one batch, preserving any
        // parallel override the base substrate installed.
        let globals: Vec<ItemId> = items.iter().map(|&j| self.members[j as usize]).collect();
        self.base.dyn_group_gains_batch(inner, &globals, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        self.base.dyn_apply(inner, self.members[item as usize]);
    }

    fn gain_kernel(&self) -> &'static str {
        self.base.dyn_gain_kernel()
    }
}

/// One shard of a [`ShardedInstance`]: a sub-oracle over exactly the
/// listed members (local id `j` ↔ `members[j]`, members ascending).
pub struct ShardOracle {
    /// Ascending global ids of the shard's items.
    pub members: Vec<ItemId>,
    /// Oracle whose item `j` is global item `members[j]`. Must report
    /// the full user universe (`num_users`, `group_sizes` equal across
    /// shards) so aggregate values stay comparable across shards.
    pub system: Box<dyn DynUtilitySystem>,
}

/// Builds a merge oracle over an arbitrary ascending global-id subset —
/// the round-2 candidate pool. Receives at most `p·k` ids.
pub type MergeBuilder = Box<dyn Fn(&[ItemId]) -> Box<dyn DynUtilitySystem> + Send + Sync>;

/// A large instance represented as per-shard oracles plus a merge
/// builder; see the module docs for the determinism contract.
pub struct ShardedInstance {
    shards: Vec<ShardOracle>,
    merge: MergeBuilder,
}

impl ShardedInstance {
    /// Assembles an instance from prebuilt shards.
    ///
    /// Validates the shard-oracle contract: at least one shard, members
    /// strictly ascending, each sub-oracle sized to its member list, and
    /// a consistent user universe across shards.
    pub fn new(shards: Vec<ShardOracle>, merge: MergeBuilder) -> Result<Self, SolverError> {
        let invalid = |message: String| SolverError::InvalidParams {
            solver: "ShardedInstance".into(),
            message,
        };
        if shards.is_empty() {
            return Err(invalid("at least one shard is required".into()));
        }
        for (i, shard) in shards.iter().enumerate() {
            if !shard.members.windows(2).all(|w| w[0] < w[1]) {
                return Err(invalid(format!(
                    "shard {i} members must be strictly ascending"
                )));
            }
            if shard.system.dyn_num_items() != shard.members.len() {
                return Err(invalid(format!(
                    "shard {i} oracle has {} items for {} members",
                    shard.system.dyn_num_items(),
                    shard.members.len()
                )));
            }
            if shard.system.dyn_num_users() != shards[0].system.dyn_num_users()
                || shard.system.dyn_group_sizes() != shards[0].system.dyn_group_sizes()
            {
                return Err(invalid(format!(
                    "shard {i} reports a different user universe than shard 0"
                )));
            }
        }
        Ok(Self { shards, merge })
    }

    /// Shards an in-memory erased system with [`shard_partition`] — each
    /// shard and the merge phase become [`SubsetSystem`] views of the
    /// base. The reference path for equivalence tests and for instances
    /// that fit centrally anyway.
    pub fn from_central(
        base: Arc<dyn DynUtilitySystem>,
        shards: usize,
        seed: u64,
    ) -> Result<Self, SolverError> {
        let n = base.dyn_num_items();
        let partition = shard_partition(n, shards, seed);
        let shard_oracles = partition
            .into_iter()
            .map(|mut members| {
                members.sort_unstable();
                let system = SubsetSystem::new(Arc::clone(&base), members.clone())?;
                Ok(ShardOracle {
                    members,
                    system: Box::new(system),
                })
            })
            .collect::<Result<Vec<_>, SolverError>>()?;
        let merge_base = Arc::clone(&base);
        let merge: MergeBuilder = Box::new(move |pool| {
            Box::new(
                SubsetSystem::new(Arc::clone(&merge_base), pool.to_vec())
                    .expect("pool ids come from shard members"),
            )
        });
        Self::new(shard_oracles, merge)
    }

    /// Number of shards `p`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total items across all shards.
    pub fn num_items(&self) -> usize {
        self.shards.iter().map(|s| s.members.len()).sum()
    }

    /// The shards (read-only).
    pub fn shards(&self) -> &[ShardOracle] {
        &self.shards
    }

    /// Two-round GreeDi over the sharded representation; see the module
    /// docs for the bit-identity contract with
    /// [`crate::algorithms::distributed::greedi`].
    ///
    /// Round 1 runs shards in parallel; results are folded in shard
    /// order, so the outcome is identical at every thread count.
    pub fn solve_greedi(&self, k: usize, variant: GreedyVariant) -> GreediOutcome {
        // Round 1: independent restricted greedy per shard, mapped back
        // to global ids.
        let runs: Vec<(Vec<ItemId>, u64, f64)> = self
            .shards
            .iter()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|shard| {
                let erased = ErasedSystem(shard.system.as_ref());
                let f = MeanUtility::new(shard.system.dyn_num_users());
                let locals: Vec<ItemId> = (0..shard.members.len() as ItemId).collect();
                let run = greedy_over_subset(&erased, &f, &locals, k, variant.clone());
                let globals: Vec<ItemId> =
                    run.0.iter().map(|&j| shard.members[j as usize]).collect();
                (globals, run.1, run.2)
            })
            .collect();

        let mut oracle_calls = 0u64;
        let mut pool: Vec<ItemId> = Vec::with_capacity(self.shards.len() * k);
        let mut best_shard: (f64, Vec<ItemId>) = (f64::NEG_INFINITY, Vec::new());
        for run in runs {
            oracle_calls += run.1;
            let value = run.2;
            if value > best_shard.0 {
                best_shard = (value, run.0.clone());
            }
            pool.extend(run.0);
        }

        // Round 2 over the union pool against the merge oracle. The
        // pool is sorted/deduplicated here (in global-id order) exactly
        // as `greedy_over_subset` would, so local ids in the merge
        // oracle scan in the same order the centralized round 2 scans
        // global ids.
        pool.sort_unstable();
        pool.dedup();
        let merge_system = (self.merge)(&pool);
        debug_assert_eq!(merge_system.dyn_num_items(), pool.len());
        let erased = ErasedSystem(merge_system.as_ref());
        let f = MeanUtility::new(merge_system.dyn_num_users());
        let locals: Vec<ItemId> = (0..pool.len() as ItemId).collect();
        let run2 = greedy_over_subset(&erased, &f, &locals, k, variant);
        oracle_calls += run2.1;
        let globals2: Vec<ItemId> = run2.0.iter().map(|&j| pool[j as usize]).collect();
        merge_outcome((globals2, run2.1, run2.2), best_shard, oracle_calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::distributed::{greedi, GreediConfig};
    use crate::algorithms::greedy::{greedy, GreedyConfig};
    use crate::toy;

    fn central(seed: u64) -> Arc<dyn DynUtilitySystem> {
        Arc::new(toy::random_coverage(60, 150, 3, 0.08, seed))
    }

    #[test]
    fn subset_system_gains_match_the_base_rows() {
        let base = central(3);
        let members = vec![5u32, 9, 12, 40];
        let sub = SubsetSystem::new(Arc::clone(&base), members.clone()).unwrap();
        let c = base.dyn_num_groups();
        let state = base.dyn_init();
        let sub_state = sub.init_inner();
        let mut through = vec![0.0; c];
        let mut direct = vec![0.0; c];
        for (local, &global) in members.iter().enumerate() {
            sub.group_gains(&sub_state, local as ItemId, &mut through);
            base.dyn_group_gains(&state, global, &mut direct);
            let same = through
                .iter()
                .zip(&direct)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "local {local} / global {global}");
        }
    }

    #[test]
    fn sharded_greedi_is_bit_identical_to_centralized_greedi() {
        for seed in 1..4u64 {
            let base = central(seed);
            for shards in [1usize, 2, 4, 8] {
                let instance = ShardedInstance::from_central(Arc::clone(&base), shards, seed)
                    .expect("valid sharding");
                let sharded = instance.solve_greedi(6, GreedyVariant::Lazy);
                let mut cfg = GreediConfig::new(6);
                cfg.shards = shards;
                cfg.seed = seed;
                let erased = ErasedSystem(base.as_ref());
                let f = MeanUtility::new(base.dyn_num_users());
                let one_shot = greedi(&erased, &f, &cfg).expect("valid config");
                assert_eq!(sharded.items, one_shot.items, "seed {seed} p {shards}");
                assert_eq!(sharded.value.to_bits(), one_shot.value.to_bits());
                assert_eq!(
                    sharded.best_shard_value.to_bits(),
                    one_shot.best_shard_value.to_bits()
                );
                assert_eq!(sharded.oracle_calls, one_shot.oracle_calls);
            }
        }
    }

    #[test]
    fn single_shard_solve_equals_centralized_greedy_value() {
        let base = central(7);
        let instance = ShardedInstance::from_central(Arc::clone(&base), 1, 0).unwrap();
        let out = instance.solve_greedi(5, GreedyVariant::Naive);
        let erased = ErasedSystem(base.as_ref());
        let f = MeanUtility::new(base.dyn_num_users());
        let plain = greedy(&erased, &f, &GreedyConfig::naive(5));
        assert_eq!(out.value.to_bits(), plain.value.to_bits());
    }

    #[test]
    fn malformed_shards_are_typed_rejections() {
        let base = central(1);
        assert!(SubsetSystem::new(Arc::clone(&base), vec![1000]).is_err());
        let merge_base = Arc::clone(&base);
        let merge: MergeBuilder = Box::new(move |pool| {
            Box::new(SubsetSystem::new(Arc::clone(&merge_base), pool.to_vec()).unwrap())
        });
        assert!(ShardedInstance::new(Vec::new(), merge).is_err());
        // Unsorted members are rejected.
        let sub = SubsetSystem::new(Arc::clone(&base), vec![0, 1, 2]).unwrap();
        let shard = ShardOracle {
            members: vec![2, 1, 0],
            system: Box::new(sub),
        };
        let merge_base = Arc::clone(&base);
        let merge: MergeBuilder = Box::new(move |pool| {
            Box::new(SubsetSystem::new(Arc::clone(&merge_base), pool.to_vec()).unwrap())
        });
        assert!(ShardedInstance::new(vec![shard], merge).is_err());
    }
}
