//! Object-safe erasure of [`UtilitySystem`] so solvers can be stored
//! behind trait objects in a registry.
//!
//! [`UtilitySystem`] has an associated `Inner` state type, so it cannot
//! be a trait object directly. [`DynUtilitySystem`] is its object-safe
//! twin: the incremental state travels as a boxed [`DynState`], and a
//! blanket impl covers every concrete system whose state is
//! `'static + Clone + Send`. [`ErasedSystem`] then adapts a
//! `&dyn DynUtilitySystem` *back* into a [`UtilitySystem`], so every
//! generic algorithm in [`crate::algorithms`] runs unchanged behind the
//! registry boundary — including each substrate's parallel
//! `group_gains_batch` override, which the erasure forwards verbatim.

use std::any::Any;

use crate::items::ItemId;
use crate::system::UtilitySystem;

/// A boxed, clonable incremental-evaluation state.
pub struct DynState(Box<dyn AnyCloneState>);

trait AnyCloneState: Any + Send {
    fn clone_box(&self) -> Box<dyn AnyCloneState>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any + Clone + Send> AnyCloneState for T {
    fn clone_box(&self) -> Box<dyn AnyCloneState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Clone for DynState {
    fn clone(&self) -> Self {
        DynState(self.0.clone_box())
    }
}

impl DynState {
    fn downcast_ref<T: Any>(&self) -> &T {
        self.0
            .as_any()
            .downcast_ref::<T>()
            .expect("DynState used with a different system than it came from")
    }

    fn downcast_mut<T: Any>(&mut self) -> &mut T {
        self.0
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("DynState used with a different system than it came from")
    }
}

/// Object-safe view of a [`UtilitySystem`]: what [`crate::engine`]
/// solvers receive. Implemented automatically for every system whose
/// `Inner` state is `'static + Clone + Send`.
///
/// The `Send + Sync` supertraits make erased systems *shareable*: a
/// long-running service can hold a built oracle behind
/// `Arc<dyn DynUtilitySystem>` (or an `Arc` of any concrete system) and
/// serve concurrent solve requests from many threads against the same
/// instance — solvers only ever take `&self`, so no synchronization
/// beyond the `Arc` is needed.
pub trait DynUtilitySystem: Send + Sync {
    /// Number of items in the ground set `V`.
    ///
    /// Accessors carry a `dyn_` prefix so the blanket impl never
    /// shadows the inherent [`UtilitySystem`] methods on concrete
    /// systems (both traits are commonly in scope together).
    fn dyn_num_items(&self) -> usize;
    /// Number of users `m`.
    fn dyn_num_users(&self) -> usize;
    /// Sizes `m_i` of the `c` user groups.
    fn dyn_group_sizes(&self) -> &[usize];
    /// Fresh boxed evaluation state for `S = ∅`.
    fn dyn_init(&self) -> DynState;
    /// Type-erased [`UtilitySystem::group_gains`].
    fn dyn_group_gains(&self, state: &DynState, item: ItemId, out: &mut [f64]);
    /// Type-erased [`UtilitySystem::group_gains_batch`] — forwards to
    /// the concrete batch implementation, preserving any parallel
    /// override the substrate installed.
    fn dyn_group_gains_batch(&self, state: &DynState, items: &[ItemId], out: &mut [f64]);
    /// Type-erased [`UtilitySystem::apply`].
    fn dyn_apply(&self, state: &mut DynState, item: ItemId);

    /// Type-erased [`UtilitySystem::gain_kernel`] — the substrate's
    /// marginal-gain evaluation strategy label, surfaced in
    /// [`crate::engine::SolveReport::gain_kernel`].
    fn dyn_gain_kernel(&self) -> &'static str;

    /// Type-erased [`UtilitySystem::approx_bytes`] — the substrate's
    /// resident-footprint estimate for byte-budgeted serving.
    fn dyn_approx_bytes(&self) -> usize;

    /// Number of groups `c`.
    fn dyn_num_groups(&self) -> usize {
        self.dyn_group_sizes().len()
    }
}

impl<S> DynUtilitySystem for S
where
    S: UtilitySystem + Send + Sync,
    S::Inner: Any + Clone + Send,
{
    fn dyn_num_items(&self) -> usize {
        UtilitySystem::num_items(self)
    }

    fn dyn_num_users(&self) -> usize {
        UtilitySystem::num_users(self)
    }

    fn dyn_group_sizes(&self) -> &[usize] {
        UtilitySystem::group_sizes(self)
    }

    fn dyn_init(&self) -> DynState {
        DynState(Box::new(self.init_inner()))
    }

    fn dyn_group_gains(&self, state: &DynState, item: ItemId, out: &mut [f64]) {
        self.group_gains(state.downcast_ref::<S::Inner>(), item, out);
    }

    fn dyn_group_gains_batch(&self, state: &DynState, items: &[ItemId], out: &mut [f64]) {
        self.group_gains_batch(state.downcast_ref::<S::Inner>(), items, out);
    }

    fn dyn_apply(&self, state: &mut DynState, item: ItemId) {
        self.apply(state.downcast_mut::<S::Inner>(), item);
    }

    fn dyn_gain_kernel(&self) -> &'static str {
        UtilitySystem::gain_kernel(self)
    }

    fn dyn_approx_bytes(&self) -> usize {
        UtilitySystem::approx_bytes(self)
    }
}

/// Adapts a type-erased system back into a [`UtilitySystem`], so the
/// generic algorithm suite runs on it unchanged.
#[derive(Clone, Copy)]
pub struct ErasedSystem<'a>(pub &'a dyn DynUtilitySystem);

impl UtilitySystem for ErasedSystem<'_> {
    type Inner = DynState;

    fn num_items(&self) -> usize {
        self.0.dyn_num_items()
    }

    fn num_users(&self) -> usize {
        self.0.dyn_num_users()
    }

    fn group_sizes(&self) -> &[usize] {
        self.0.dyn_group_sizes()
    }

    fn init_inner(&self) -> Self::Inner {
        self.0.dyn_init()
    }

    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]) {
        self.0.dyn_group_gains(inner, item, out);
    }

    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        self.0.dyn_group_gains_batch(inner, items, out);
    }

    fn apply(&self, inner: &mut Self::Inner, item: ItemId) {
        self.0.dyn_apply(inner, item);
    }

    fn gain_kernel(&self) -> &'static str {
        self.0.dyn_gain_kernel()
    }

    fn approx_bytes(&self) -> usize {
        self.0.dyn_approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MeanUtility;
    use crate::algorithms::greedy::{greedy, GreedyConfig};
    use crate::metrics::evaluate;
    use crate::toy;

    #[test]
    fn erased_system_matches_concrete_system() {
        let sys = toy::random_coverage(30, 90, 3, 0.1, 7);
        let erased = ErasedSystem(&sys);
        let f = MeanUtility::new(sys.num_users());
        let direct = greedy(&sys, &f, &GreedyConfig::lazy(5));
        let through = greedy(&erased, &f, &GreedyConfig::lazy(5));
        assert_eq!(direct.items, through.items);
        assert_eq!(direct.value.to_bits(), through.value.to_bits());
        assert_eq!(direct.oracle_calls, through.oracle_calls);
    }

    #[test]
    fn erased_batch_matches_per_item() {
        let sys = toy::figure1();
        let erased = ErasedSystem(&sys);
        let c = UtilitySystem::num_groups(&erased);
        let mut state = erased.init_inner();
        erased.apply(&mut state, 1);
        let items: Vec<ItemId> = (0..4).collect();
        let mut batch = vec![0.0; items.len() * c];
        erased.group_gains_batch(&state, &items, &mut batch);
        let mut row = vec![0.0; c];
        for (j, &v) in items.iter().enumerate() {
            erased.group_gains(&state, v, &mut row);
            assert_eq!(&batch[j * c..(j + 1) * c], &row[..]);
        }
    }

    #[test]
    fn erased_systems_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn DynUtilitySystem>();
        // An Arc'd concrete system can serve solves from many threads.
        let sys = std::sync::Arc::new(toy::random_coverage(20, 60, 2, 0.15, 3));
        let f = MeanUtility::new(UtilitySystem::num_users(sys.as_ref()));
        let baseline = greedy(sys.as_ref(), &f, &GreedyConfig::lazy(3)).items;
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sys = std::sync::Arc::clone(&sys);
                std::thread::spawn(move || {
                    let shared: &dyn DynUtilitySystem = sys.as_ref();
                    let erased = ErasedSystem(shared);
                    let f = MeanUtility::new(erased.num_users());
                    greedy(&erased, &f, &GreedyConfig::lazy(3)).items
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), baseline);
        }
    }

    #[test]
    fn erased_evaluation_matches() {
        let sys = toy::figure1();
        let erased = ErasedSystem(&sys);
        let a = evaluate(&sys, &[0, 3]);
        let b = evaluate(&erased, &[0, 3]);
        assert_eq!(a.f.to_bits(), b.f.to_bits());
        assert_eq!(a.g.to_bits(), b.g.to_bits());
        assert_eq!(a.group_means, b.group_means);
    }
}
