//! [`Solver`] adapters for every `core::algorithms` entry point.
//!
//! Each adapter lives next to the algorithm it wraps conceptually: it
//! translates [`ScenarioParams`] into the algorithm's own config type,
//! runs the free function over the type-erased oracle, and folds the
//! outcome into the uniform [`SolveReport`]. Capability gaps the free
//! functions express as panics/asserts (SMSC's two-group requirement,
//! exact blow-ups) are checked *before* the call and surface as typed
//! [`SolverError`]s.
//!
//! `oracle_calls` is reported wherever the underlying routine accounts
//! for it; adapters whose routine does not expose a call count
//! (`Random`, `TopSingletons`, `ParetoSweep`) report 0.

use crate::aggregate::MeanUtility;
use crate::algorithms::baselines::{random_subset, top_singletons};
use crate::algorithms::bsm_saturate::{bsm_saturate_detailed, BsmSaturateConfig};
use crate::algorithms::distributed::{greedi, GreediConfig};
use crate::algorithms::exact::{branch_and_bound_bsm, brute_force_bsm, ExactConfig};
use crate::algorithms::greedy::{greedy, GreedyConfig};
use crate::algorithms::knapsack::{knapsack_greedy, KnapsackConfig};
use crate::algorithms::local_search::{local_search_refine, LocalSearchConfig};
use crate::algorithms::mwu::{mwu_robust, MwuConfig};
use crate::algorithms::nonmonotone::{random_greedy, RandomGreedyConfig};
use crate::algorithms::pareto::{pareto_frontier, FrontierConfig, FrontierSolver};
use crate::algorithms::saturate::{saturate, SaturateConfig};
use crate::algorithms::smsc::{smsc, SmscConfig};
use crate::algorithms::streaming::{sieve_streaming, SieveConfig};
use crate::algorithms::tsgreedy::{bsm_tsgreedy_detailed, TsGreedyConfig};
use crate::items::binomial;
use crate::metrics::evaluate;

use super::erased::{DynUtilitySystem, ErasedSystem};
use super::params::ScenarioParams;
use super::registry::{Capabilities, Solver};
use super::report::{SolveReport, SolverError};
use super::session::{
    saturate_config_for, BsmSaturateSession, GreediSession, GreedySession, SaturateSession,
    SieveSession, SolveSession, TsGreedySession,
};

/// The default suite: one boxed adapter per `core::algorithms` entry
/// point, in the paper's presentation order followed by the extensions.
pub fn all_solvers() -> Vec<Box<dyn Solver>> {
    vec![
        Box::new(GreedySolver),
        Box::new(SaturateSolver),
        Box::new(SmscSolver),
        Box::new(TsGreedySolver),
        Box::new(BsmSaturateSolver),
        Box::new(BsmOptimalSolver),
        Box::new(BruteForceSolver),
        Box::new(RandomSolver),
        Box::new(TopSingletonsSolver),
        Box::new(SieveStreamingSolver),
        Box::new(GreediSolver),
        Box::new(KnapsackSolver),
        Box::new(LocalSearchSolver),
        Box::new(RandomGreedySolver),
        Box::new(MwuSolver),
        Box::new(ParetoSweepSolver),
    ]
}

fn check_tau(solver: &str, tau: f64) -> Result<(), SolverError> {
    if (0.0..=1.0).contains(&tau) {
        Ok(())
    } else {
        Err(SolverError::InvalidParams {
            solver: solver.to_string(),
            message: format!("tau must lie in [0, 1], got {tau}"),
        })
    }
}

fn check_epsilon(solver: &str, epsilon: f64) -> Result<(), SolverError> {
    if epsilon > 0.0 && epsilon < 1.0 {
        Ok(())
    } else {
        Err(SolverError::InvalidParams {
            solver: solver.to_string(),
            message: format!("epsilon must lie in (0, 1), got {epsilon}"),
        })
    }
}

/// Maps an algorithm-level [`crate::algorithms::InvalidConfig`] onto the
/// engine's typed rejection — the seam that upholds the registry
/// contract ("never a panic") for entry points whose free functions
/// validate their own configs.
fn invalid_config(solver: &str, err: crate::algorithms::InvalidConfig) -> SolverError {
    SolverError::InvalidParams {
        solver: solver.to_string(),
        message: err.message,
    }
}

fn saturate_config(params: &ScenarioParams) -> SaturateConfig {
    saturate_config_for(params)
}

fn greedy_config(params: &ScenarioParams) -> GreedyConfig {
    GreedyConfig {
        variant: params.variant.clone(),
        seed: params.seed,
        ..GreedyConfig::lazy(params.k)
    }
}

/// Builds the GreeDi configuration (shared by `solve` and
/// `open_session` so the two can never drift apart).
fn greedi_config(params: &ScenarioParams) -> GreediConfig {
    GreediConfig {
        k: params.k,
        shards: params.shards,
        variant: params.variant.clone(),
        seed: params.seed,
    }
}

/// Classic greedy on `f` — the fairness-unaware utility anchor.
pub struct GreedySolver;

impl Solver for GreedySolver {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            resumable: true,
            prefix_exact: true,
            ..Capabilities::default()
        }
    }

    fn open_session(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<Box<dyn SolveSession>, SolverError> {
        Ok(Box::new(GreedySession::open(system, params)))
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let erased = ErasedSystem(system);
        let f = MeanUtility::new(system.dyn_num_users());
        let run = greedy(&erased, &f, &greedy_config(params));
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &eval,
            run.value,
        );
        report.opt_f_estimate = run.value;
        report.oracle_calls = run.oracle_calls;
        Ok(report)
    }
}

/// Saturate on `g` — the fairness-only robust anchor.
pub struct SaturateSolver;

impl Solver for SaturateSolver {
    fn name(&self) -> &'static str {
        "Saturate"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            resumable: true,
            ..Capabilities::default()
        }
    }

    fn open_session(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<Box<dyn SolveSession>, SolverError> {
        Ok(Box::new(SaturateSession::open(system, params)))
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let erased = ErasedSystem(system);
        let run = saturate(&erased, &saturate_config(params));
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &eval,
            run.opt_g_estimate,
        )
        .note("rounds", run.rounds as f64)
        .note("exact_path", if run.exact { 1.0 } else { 0.0 });
        report.opt_g_estimate = run.opt_g_estimate;
        report.oracle_calls = run.oracle_calls;
        Ok(report)
    }
}

/// The SMSC baseline — defined only for exactly two groups.
pub struct SmscSolver;

impl Solver for SmscSolver {
    fn name(&self) -> &'static str {
        "SMSC"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            requires_two_groups: true,
            ..Capabilities::default()
        }
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let c = system.dyn_num_groups();
        if c != 2 {
            return Err(SolverError::UnsupportedGroupCount {
                solver: self.name().to_string(),
                required: 2,
                got: c,
            });
        }
        let erased = ErasedSystem(system);
        let mut cfg = SmscConfig::new(params.k);
        cfg.variant = params.variant.clone();
        let run = smsc(&erased, &cfg);
        let objective = run.eval.g;
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &run.eval,
            objective,
        );
        report.fell_back = run.fell_back;
        report.oracle_calls = run.oracle_calls;
        Ok(report)
    }
}

/// BSM-TSGreedy (Algorithm 1 of the paper).
pub struct TsGreedySolver;

impl Solver for TsGreedySolver {
    fn name(&self) -> &'static str {
        "BSM-TSGreedy"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            uses_tau: true,
            resumable: true,
            ..Capabilities::default()
        }
    }

    fn open_session(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<Box<dyn SolveSession>, SolverError> {
        check_tau(self.name(), params.tau)?;
        Ok(Box::new(TsGreedySession::open(system, params)))
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        check_tau(self.name(), params.tau)?;
        let erased = ErasedSystem(system);
        let mut cfg = TsGreedyConfig::new(params.k, params.tau);
        cfg.variant = params.variant.clone();
        cfg.saturate = saturate_config(params);
        let run = bsm_tsgreedy_detailed(&erased, &cfg);
        let objective = run.bsm.eval.f;
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.bsm.items,
            &run.bsm.eval,
            objective,
        )
        .note("stage1_len", run.stage1_len as f64);
        report.opt_f_estimate = run.bsm.opt_f_estimate;
        report.opt_g_estimate = run.bsm.opt_g_estimate;
        report.fell_back = run.bsm.fell_back;
        report.oracle_calls = run.bsm.oracle_calls;
        Ok(report)
    }
}

/// BSM-Saturate (Algorithm 2 of the paper).
pub struct BsmSaturateSolver;

impl Solver for BsmSaturateSolver {
    fn name(&self) -> &'static str {
        "BSM-Saturate"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            uses_tau: true,
            resumable: true,
            ..Capabilities::default()
        }
    }

    fn open_session(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<Box<dyn SolveSession>, SolverError> {
        check_tau(self.name(), params.tau)?;
        check_epsilon(self.name(), params.epsilon)?;
        Ok(Box::new(BsmSaturateSession::open(system, params)))
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        check_tau(self.name(), params.tau)?;
        check_epsilon(self.name(), params.epsilon)?;
        let erased = ErasedSystem(system);
        let mut cfg = BsmSaturateConfig::new(params.k, params.tau).with_epsilon(params.epsilon);
        cfg.variant = params.variant.clone();
        cfg.saturate = saturate_config(params);
        let run = bsm_saturate_detailed(&erased, &cfg);
        let objective = run.bsm.eval.f;
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.bsm.items,
            &run.bsm.eval,
            objective,
        )
        .note("alpha_min", run.alpha_min)
        .note("alpha_max", run.alpha_max)
        .note("rounds", run.rounds as f64);
        report.opt_f_estimate = run.bsm.opt_f_estimate;
        report.opt_g_estimate = run.bsm.opt_g_estimate;
        report.fell_back = run.bsm.fell_back;
        report.oracle_calls = run.bsm.oracle_calls;
        Ok(report)
    }
}

/// Exact `BSM-Optimal` via submodular branch-and-bound. Refuses ground
/// sets beyond [`ScenarioParams::exact_item_cap`].
pub struct BsmOptimalSolver;

impl Solver for BsmOptimalSolver {
    fn name(&self) -> &'static str {
        "BSM-Optimal"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: true,
            uses_tau: true,
            ..Capabilities::default()
        }
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        check_tau(self.name(), params.tau)?;
        let n = system.dyn_num_items();
        if n > params.exact_item_cap {
            return Err(SolverError::GridTooLarge {
                solver: self.name().to_string(),
                cap: format!("n <= {}", params.exact_item_cap),
                size: format!("n = {n}"),
            });
        }
        let erased = ErasedSystem(system);
        let mut cfg = ExactConfig::new(params.k, params.tau);
        cfg.node_limit = params.exact_node_limit;
        let run = branch_and_bound_bsm(&erased, &cfg);
        let objective = run.eval.f;
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &run.eval,
            objective,
        )
        .note("nodes", run.nodes as f64)
        .note("complete", if run.complete { 1.0 } else { 0.0 })
        .note("feasible", if run.feasible { 1.0 } else { 0.0 });
        report.opt_g_estimate = run.opt_g;
        report.fell_back = !run.complete;
        Ok(report)
    }
}

/// Exact BSM via full `C(n, k)` enumeration. Refuses grids whose subset
/// count exceeds [`ScenarioParams::exact_subset_limit`].
pub struct BruteForceSolver;

impl Solver for BruteForceSolver {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            exact: true,
            uses_tau: true,
            ..Capabilities::default()
        }
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        check_tau(self.name(), params.tau)?;
        let n = system.dyn_num_items();
        let subsets = binomial(n, params.k.min(n));
        if subsets > params.exact_subset_limit {
            return Err(SolverError::GridTooLarge {
                solver: self.name().to_string(),
                cap: format!("C(n, k) <= {:.0}", params.exact_subset_limit),
                size: format!("C({n}, {}) = {subsets:.3e}", params.k.min(n)),
            });
        }
        let erased = ErasedSystem(system);
        let run = brute_force_bsm(&erased, params.k, params.tau);
        let objective = run.eval.f;
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &run.eval,
            objective,
        )
        .note("subsets", subsets)
        .note("feasible", if run.feasible { 1.0 } else { 0.0 });
        report.opt_g_estimate = run.opt_g;
        Ok(report)
    }
}

/// Uniformly random size-`k` baseline (deterministic per seed).
pub struct RandomSolver;

impl Solver for RandomSolver {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            randomized: true,
            ..Capabilities::default()
        }
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let erased = ErasedSystem(system);
        let (items, eval) = random_subset(&erased, params.k, params.seed);
        let objective = eval.f;
        Ok(SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            items,
            &eval,
            objective,
        ))
    }
}

/// Top-`k` singleton items by `f`-gain.
pub struct TopSingletonsSolver;

impl Solver for TopSingletonsSolver {
    fn name(&self) -> &'static str {
        "TopSingletons"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let erased = ErasedSystem(system);
        let f = MeanUtility::new(system.dyn_num_users());
        let (items, eval) = top_singletons(&erased, &f, params.k);
        let objective = eval.f;
        Ok(SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            items,
            &eval,
            objective,
        ))
    }
}

/// Single-pass Sieve-Streaming on `f`.
pub struct SieveStreamingSolver;

impl Solver for SieveStreamingSolver {
    fn name(&self) -> &'static str {
        "SieveStreaming"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            resumable: true,
            streaming: true,
            ..Capabilities::default()
        }
    }

    fn open_session(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<Box<dyn SolveSession>, SolverError> {
        check_epsilon(self.name(), params.epsilon)?;
        Ok(Box::new(SieveSession::open(system, params)))
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        check_epsilon(self.name(), params.epsilon)?;
        let erased = ErasedSystem(system);
        let f = MeanUtility::new(system.dyn_num_users());
        let cfg = SieveConfig {
            k: params.k,
            epsilon: params.epsilon,
        };
        let run = sieve_streaming(&erased, &f, &cfg).map_err(|e| invalid_config(self.name(), e))?;
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &eval,
            run.value,
        )
        .note("candidates", run.candidates as f64);
        report.oracle_calls = run.oracle_calls;
        Ok(report)
    }
}

/// Two-round distributed GreeDi on `f`.
pub struct GreediSolver;

impl Solver for GreediSolver {
    fn name(&self) -> &'static str {
        "GreeDi"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            randomized: true,
            resumable: true,
            sharded: true,
            ..Capabilities::default()
        }
    }

    fn open_session(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<Box<dyn SolveSession>, SolverError> {
        greedi_config(params)
            .validate()
            .map_err(|e| invalid_config(self.name(), e))?;
        Ok(Box::new(GreediSession::open(system, params)))
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let erased = ErasedSystem(system);
        let f = MeanUtility::new(system.dyn_num_users());
        let cfg = greedi_config(params);
        let run = greedi(&erased, &f, &cfg).map_err(|e| invalid_config(self.name(), e))?;
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &eval,
            run.value,
        )
        .note("shards", params.shards as f64)
        .note("best_shard_value", run.best_shard_value);
        report.oracle_calls = run.oracle_calls;
        Ok(report)
    }
}

/// Cost-benefit greedy + best singleton under a unit-cost budget of `k`
/// (or [`ScenarioParams::knapsack_budget`] when set).
pub struct KnapsackSolver;

impl Solver for KnapsackSolver {
    fn name(&self) -> &'static str {
        "Knapsack"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let budget = params.knapsack_budget.unwrap_or(params.k as f64);
        if !(budget > 0.0) {
            return Err(SolverError::InvalidParams {
                solver: self.name().to_string(),
                message: format!("budget must be positive, got {budget}"),
            });
        }
        let erased = ErasedSystem(system);
        let f = MeanUtility::new(system.dyn_num_users());
        let cfg = KnapsackConfig::uniform(system.dyn_num_items(), budget);
        let run = knapsack_greedy(&erased, &f, &cfg);
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &eval,
            run.value,
        )
        .note("cost", run.cost)
        .note("singleton_won", if run.singleton_won { 1.0 } else { 0.0 });
        report.oracle_calls = run.oracle_calls;
        Ok(report)
    }
}

/// BSM-TSGreedy followed by fairness-constrained pairwise-interchange
/// refinement on `f` (swaps keep `g(S) ≥ τ·OPT'_g`).
pub struct LocalSearchSolver;

impl Solver for LocalSearchSolver {
    fn name(&self) -> &'static str {
        "LocalSearch"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            uses_tau: true,
            ..Capabilities::default()
        }
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        check_tau(self.name(), params.tau)?;
        let erased = ErasedSystem(system);
        let mut cfg = TsGreedyConfig::new(params.k, params.tau);
        cfg.variant = params.variant.clone();
        cfg.saturate = saturate_config(params);
        let start = bsm_tsgreedy_detailed(&erased, &cfg).bsm;
        let g_floor = params.tau * start.opt_g_estimate - 1e-9;
        let constraint = |items: &[crate::items::ItemId]| evaluate(&erased, items).g >= g_floor;
        let f = MeanUtility::new(system.dyn_num_users());
        let refined = local_search_refine(
            &erased,
            &f,
            &start.items,
            &constraint,
            &LocalSearchConfig::default(),
        );
        let eval = evaluate(&erased, &refined.items);
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            refined.items,
            &eval,
            refined.value,
        )
        .note("swaps", refined.swaps as f64)
        .note("initial_f", refined.initial_value);
        report.opt_f_estimate = start.opt_f_estimate;
        report.opt_g_estimate = start.opt_g_estimate;
        report.fell_back = start.fell_back;
        report.oracle_calls = start.oracle_calls + refined.oracle_calls;
        Ok(report)
    }
}

/// Random Greedy (uniform choice among the top-`k` gains each round).
pub struct RandomGreedySolver;

impl Solver for RandomGreedySolver {
    fn name(&self) -> &'static str {
        "RandomGreedy"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            randomized: true,
            ..Capabilities::default()
        }
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let erased = ErasedSystem(system);
        let f = MeanUtility::new(system.dyn_num_users());
        let cfg = RandomGreedyConfig {
            k: params.k,
            seed: params.seed,
        };
        let run = random_greedy(&erased, &f, &cfg);
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &eval,
            run.value,
        );
        report.oracle_calls = run.oracle_calls;
        Ok(report)
    }
}

/// Multiplicative-weight updates for the maximin objective `g`.
pub struct MwuSolver;

impl Solver for MwuSolver {
    fn name(&self) -> &'static str {
        "MWU"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        let erased = ErasedSystem(system);
        let cfg = MwuConfig {
            k: params.k,
            rounds: params.mwu_rounds,
            eta: None,
            variant: params.variant.clone(),
        };
        let run = mwu_robust(&erased, &cfg);
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            run.items,
            &eval,
            run.opt_g_estimate,
        )
        .note("rounds", run.rounds as f64);
        report.opt_g_estimate = run.opt_g_estimate;
        report.oracle_calls = run.oracle_calls;
        Ok(report)
    }
}

/// τ-sweep Pareto frontier (BSM-Saturate driven): returns the knee
/// point (maximum `f + g` on the frontier) and reports the sweep's
/// hypervolume as the objective.
pub struct ParetoSweepSolver;

impl Solver for ParetoSweepSolver {
    fn name(&self) -> &'static str {
        "ParetoSweep"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities::default()
    }

    fn solve(
        &self,
        system: &dyn DynUtilitySystem,
        params: &ScenarioParams,
    ) -> Result<SolveReport, SolverError> {
        if params.sweep_taus.is_empty() {
            return Err(SolverError::InvalidParams {
                solver: self.name().to_string(),
                message: "sweep_taus must be non-empty".into(),
            });
        }
        let erased = ErasedSystem(system);
        let cfg = FrontierConfig {
            k: params.k,
            taus: params.sweep_taus.clone(),
            solver: FrontierSolver::BsmSaturate,
        };
        let frontier = pareto_frontier(&erased, &cfg);
        let knee = frontier
            .points
            .iter()
            .filter(|p| p.on_frontier)
            .max_by(|a, b| (a.f + a.g).partial_cmp(&(b.f + b.g)).expect("finite"))
            .ok_or_else(|| SolverError::InvalidParams {
                solver: self.name().to_string(),
                message: "sweep produced an empty frontier".into(),
            })?;
        let eval = evaluate(&erased, &knee.items);
        let on_frontier = frontier.points.iter().filter(|p| p.on_frontier).count();
        Ok(SolveReport::from_eval(
            self.name(),
            params.k,
            params.tau,
            knee.items.clone(),
            &eval,
            frontier.hypervolume,
        )
        .note("hypervolume", frontier.hypervolume)
        .note("points", frontier.points.len() as f64)
        .note("frontier_points", on_frontier as f64)
        .note("knee_tau", knee.tau))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SolverRegistry;
    use crate::toy;

    #[test]
    fn figure1_matches_the_direct_calls() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let params = ScenarioParams::new(2, 0.8);
        let ts = registry.solve("BSM-TSGreedy", &sys, &params).unwrap();
        let mut items = ts.items.clone();
        items.sort_unstable();
        assert_eq!(items, vec![0, 3]); // falls back to S_g at τ = 0.8
        assert!(ts.fell_back);
        let greedy = registry
            .solve("Greedy", &sys, &ScenarioParams::new(2, 0.0))
            .unwrap();
        assert_eq!(greedy.items, vec![0, 1]);
        assert!((greedy.f - 0.75).abs() < 1e-12);
        assert!((greedy.objective - 0.75).abs() < 1e-12);
        assert!(greedy.oracle_calls > 0);
    }

    #[test]
    fn smsc_rejects_non_two_group_systems_cleanly() {
        let sys = toy::random_coverage(10, 30, 3, 0.2, 1);
        let registry = SolverRegistry::default();
        let err = registry
            .solve("SMSC", &sys, &ScenarioParams::new(2, 0.5))
            .unwrap_err();
        assert_eq!(
            err,
            SolverError::UnsupportedGroupCount {
                solver: "SMSC".into(),
                required: 2,
                got: 3,
            }
        );
    }

    #[test]
    fn exact_solvers_refuse_grids_beyond_their_caps() {
        let sys = toy::random_coverage(40, 60, 2, 0.2, 3);
        let registry = SolverRegistry::default();
        let mut params = ScenarioParams::new(8, 0.5);
        params.exact_subset_limit = 1_000.0; // C(40, 8) >> 1000
        let err = registry.solve("BruteForce", &sys, &params).unwrap_err();
        assert!(matches!(err, SolverError::GridTooLarge { .. }), "{err}");
        params.exact_item_cap = 20; // n = 40 > 20
        let err = registry.solve("BSM-Optimal", &sys, &params).unwrap_err();
        assert!(matches!(err, SolverError::GridTooLarge { .. }), "{err}");
        // Within the caps, both run and agree on OPT_g.
        let mut small = ScenarioParams::new(3, 0.5);
        small.exact_node_limit = 1_000_000;
        let tiny = toy::random_coverage(10, 30, 2, 0.2, 5);
        let bb = registry.solve("BSM-Optimal", &tiny, &small).unwrap();
        let bf = registry.solve("BruteForce", &tiny, &small).unwrap();
        assert!((bb.opt_g_estimate - bf.opt_g_estimate).abs() < 1e-9);
        assert!((bb.f - bf.f).abs() < 1e-9);
    }

    #[test]
    fn invalid_params_are_typed_not_panics() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let bad_tau = ScenarioParams::new(2, 1.5);
        for name in ["BSM-TSGreedy", "BSM-Saturate", "BSM-Optimal", "LocalSearch"] {
            let err = registry.solve(name, &sys, &bad_tau).unwrap_err();
            assert!(
                matches!(err, SolverError::InvalidParams { .. }),
                "{name}: {err}"
            );
        }
        let bad_eps = ScenarioParams::new(2, 0.5).with_epsilon(1.0);
        for name in ["BSM-Saturate", "SieveStreaming"] {
            assert!(registry.solve(name, &sys, &bad_eps).is_err(), "{name}");
            assert!(
                registry.open_session(name, &sys, &bad_eps).is_err(),
                "{name}"
            );
        }
        let mut bad_shards = ScenarioParams::new(2, 0.5);
        bad_shards.shards = 0;
        for run in [
            registry.solve("GreeDi", &sys, &bad_shards).map(|_| ()),
            registry
                .open_session("GreeDi", &sys, &bad_shards)
                .map(|_| ()),
        ] {
            let err = run.unwrap_err();
            assert!(matches!(err, SolverError::InvalidParams { .. }), "{err}");
        }
    }

    #[test]
    fn pareto_sweep_reports_the_knee_and_hypervolume() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let mut params = ScenarioParams::new(2, 0.5);
        params.sweep_taus = vec![0.0, 0.3, 0.8];
        let report = registry.solve("ParetoSweep", &sys, &params).unwrap();
        assert!(report.objective > 0.0);
        assert!(report.items.len() <= 2);
        assert!(report.notes.iter().any(|(l, _)| l == "hypervolume"));
    }

    #[test]
    fn local_search_never_worsens_tsgreedy_and_keeps_feasibility() {
        let sys = toy::random_coverage(20, 60, 2, 0.12, 4);
        let registry = SolverRegistry::default();
        let params = ScenarioParams::new(4, 0.6);
        let ts = registry.solve("BSM-TSGreedy", &sys, &params).unwrap();
        let ls = registry.solve("LocalSearch", &sys, &params).unwrap();
        assert!(ls.f + 1e-9 >= ts.f, "refinement lost utility");
        assert!(ls.g + 1e-9 >= params.tau * ls.opt_g_estimate - 1e-9);
    }
}
