//! Resumable solve sessions: the algorithm cores as step-by-step state
//! machines behind one object-safe interface.
//!
//! A [`SolveSession`] is an in-progress solve that advances one *round*
//! at a time ([`SolveSession::step`]), exposes its partial solution at
//! any point ([`SolveSession::snapshot`]), and produces the same
//! [`SolveReport`] a one-shot [`super::Solver::solve`] call would
//! ([`SolveSession::finish`]). Three consumers are built on it:
//!
//! * **Warm k-axis sweeps** — for greedy-family solvers one round never
//!   looks at the budget `k` except to stop, so the solution for budget
//!   `k` is a strict prefix of the solution for `k′ > k` — items, value
//!   trajectory, *and* oracle-call counts. Sessions that guarantee this
//!   report [`SolveSession::prefix_exact`]` = true` and serve any
//!   smaller budget via [`SolveSession::solution_at`]; the bench
//!   harness uses this to run an entire k-axis in `O(max k)` rounds
//!   instead of `O(Σ k)`.
//! * **Anytime serving** — a service can run a session in bounded step
//!   chunks, reporting per-round progress between chunks, and park the
//!   session (which owns no borrow of the registry) across requests.
//! * **Uniformity** — solvers without a native incremental core are
//!   wrapped by the run-to-completion [`OneShotSession`] adapter, so
//!   schedulers can treat every solver as a session.
//!
//! Sessions are opened through [`super::Solver::open_session`] (or
//! [`super::SolverRegistry::open_session`]); the
//! [`super::Capabilities::resumable`] flag marks solvers with a native
//! incremental session. Every `step`/`solution_at`/`finish` call must
//! receive the **same system** the session was opened on — the parked
//! incremental state is only meaningful against it (stepping with a
//! different system panics on the state downcast or silently corrupts
//! results).
//!
//! The binding invariant (DESIGN.md §7): for every session, stepping to
//! completion is **bit-identical** (items, objective, oracle-call
//! counts) to the one-shot solve with the same parameters, and for
//! prefix-exact sessions `solution_at(k)` is bit-identical to a cold
//! one-shot run at budget `k`. `tests/session_equivalence.rs` enforces
//! both across substrates and thread counts.

use crate::aggregate::MeanUtility;
use crate::algorithms::bsm_saturate::{BsmSaturateConfig, BsmSaturateStepper};
use crate::algorithms::distributed::{
    greedy_over_subset, merge_outcome, shard_partition, GreediOutcome,
};
use crate::algorithms::greedy::{GreedyEngine, GreedyVariant};
use crate::algorithms::saturate::{SaturateConfig, SaturateStepper};
use crate::algorithms::streaming::{SieveConfig, SieveCore};
use crate::algorithms::tsgreedy::{TsGreedyConfig, TsGreedyStepper};
use crate::items::ItemId;
use crate::metrics::evaluate;
use crate::system::{SolutionState, StateParts};

use super::erased::{DynState, DynUtilitySystem, ErasedSystem};
use super::params::ScenarioParams;
use super::report::{SolveReport, SolverError};

/// Whether a session has more rounds to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    /// More rounds remain; call [`SolveSession::step`] again.
    Running,
    /// The session has finished; [`SolveSession::finish`] (or
    /// [`SolveSession::solution_at`]) yields the report.
    Done,
}

/// A cheap snapshot of an in-progress solve: what an anytime consumer
/// reports between step chunks.
#[derive(Clone, Debug)]
pub struct PartialSolution {
    /// Rounds completed so far (solver-specific unit: greedy inserts,
    /// bisection probes, algorithm stages).
    pub round: usize,
    /// Items chosen so far, in insertion order (best witness so far for
    /// bisection solvers).
    pub items: Vec<ItemId>,
    /// Per-group utility sums of `items` where the solver tracks them
    /// incrementally; empty otherwise.
    pub group_sums: Vec<f64>,
    /// The solver's current objective value (aggregate value for
    /// greedy, witnessed `g` for Saturate, `α_min` for BSM-Saturate).
    pub objective: f64,
    /// Oracle calls performed so far.
    pub oracle_calls: u64,
    /// Whether the session has finished.
    pub done: bool,
}

/// An in-progress, resumable solve behind an object-safe interface.
///
/// Obtain one from [`super::Solver::open_session`]. See the module docs
/// for the contract; in particular, every method taking a `system` must
/// receive the session's own system.
pub trait SolveSession: Send {
    /// Registry name of the solver this session runs.
    fn solver(&self) -> &'static str;

    /// Whether the session has finished.
    fn done(&self) -> bool;

    /// Rounds completed so far — the [`PartialSolution::round`] counter
    /// without the snapshot's allocations, for callers that poll
    /// progress every step (the warm-sweep stepping loop).
    fn rounds(&self) -> usize;

    /// Advances the session by one round.
    fn step(&mut self, system: &dyn DynUtilitySystem) -> SessionStatus;

    /// Snapshot of the current progress (no oracle work).
    fn snapshot(&self) -> PartialSolution;

    /// Whether [`SolveSession::solution_at`] serves *any* budget
    /// `k ≤` the session's own `k` bit-identically to a cold one-shot
    /// run at that budget. Greedy-family sessions are prefix-exact;
    /// bisection-based sessions (whose probes depend on `k`) are not.
    fn prefix_exact(&self) -> bool {
        false
    }

    /// The report a cold run at budget `k` would have produced.
    ///
    /// Prefix-exact sessions serve any `k` up to the rounds stepped so
    /// far (or any `k` once done); other sessions only serve their own
    /// `k`, and only once done. Returns
    /// [`SolverError::InvalidParams`] otherwise.
    fn solution_at(
        &self,
        system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError>;

    /// Runs any remaining rounds and returns the final report —
    /// bit-identical (up to `seconds`, which sessions leave at 0) to
    /// the one-shot `solve` with the same parameters.
    fn finish(&mut self, system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError>;
}

/// Run-to-completion adapter: wraps a finished [`SolveReport`] as a
/// [`SolveSession`] so solvers without a native incremental core sit
/// behind the same interface. The solve happens when the session is
/// opened; `step` is a no-op that reports `Done`.
pub struct OneShotSession {
    solver: &'static str,
    report: SolveReport,
}

impl OneShotSession {
    /// Wraps an already-computed report.
    pub fn new(solver: &'static str, report: SolveReport) -> Self {
        Self { solver, report }
    }
}

impl SolveSession for OneShotSession {
    fn solver(&self) -> &'static str {
        self.solver
    }

    fn done(&self) -> bool {
        true
    }

    fn rounds(&self) -> usize {
        self.report.items.len()
    }

    fn step(&mut self, _system: &dyn DynUtilitySystem) -> SessionStatus {
        SessionStatus::Done
    }

    fn snapshot(&self) -> PartialSolution {
        PartialSolution {
            round: self.report.items.len(),
            items: self.report.items.clone(),
            group_sums: Vec::new(),
            objective: self.report.objective,
            oracle_calls: self.report.oracle_calls,
            done: true,
        }
    }

    fn solution_at(
        &self,
        _system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError> {
        if k == self.report.k {
            Ok(self.report.clone())
        } else {
            Err(SolverError::InvalidParams {
                solver: self.solver.to_string(),
                message: format!(
                    "one-shot session only serves its own budget k = {} (asked {k})",
                    self.report.k
                ),
            })
        }
    }

    fn finish(&mut self, _system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError> {
        Ok(self.report.clone())
    }
}

/// Native greedy session: one item insertion per step, prefix-exact.
///
/// Powers the warm k-axis sweeps: open at the largest `k` of the axis,
/// step to round `k_i`, and [`GreedySession::solution_at`] every
/// smaller budget from the recorded round boundaries.
pub struct GreedySession {
    tau: f64,
    k: usize,
    engine: GreedyEngine<MeanUtility>,
    parts: Option<StateParts<DynState>>,
}

impl GreedySession {
    /// Opens a session for the `Greedy` solver on `system` (initial
    /// state only; no oracle work until the first step).
    pub fn open(system: &dyn DynUtilitySystem, params: &ScenarioParams) -> Self {
        let erased = ErasedSystem(system);
        let mut state = SolutionState::new(&erased);
        let f = MeanUtility::new(system.dyn_num_users());
        let cfg = crate::algorithms::greedy::GreedyConfig {
            variant: params.variant.clone(),
            seed: params.seed,
            ..crate::algorithms::greedy::GreedyConfig::lazy(params.k)
        };
        let engine = GreedyEngine::new(&mut state, f, cfg);
        Self {
            tau: params.tau,
            k: params.k,
            engine,
            parts: Some(state.into_parts()),
        }
    }

    fn parts(&self) -> &StateParts<DynState> {
        self.parts.as_ref().expect("state parked between steps")
    }
}

impl SolveSession for GreedySession {
    fn solver(&self) -> &'static str {
        "Greedy"
    }

    fn done(&self) -> bool {
        self.engine.is_done()
    }

    fn rounds(&self) -> usize {
        self.engine.rounds()
    }

    fn step(&mut self, system: &dyn DynUtilitySystem) -> SessionStatus {
        let erased = ErasedSystem(system);
        let mut state = SolutionState::from_parts(
            &erased,
            self.parts.take().expect("state parked between steps"),
        );
        let running = self.engine.step(&mut state);
        self.parts = Some(state.into_parts());
        if running {
            SessionStatus::Running
        } else {
            SessionStatus::Done
        }
    }

    fn snapshot(&self) -> PartialSolution {
        let parts = self.parts();
        PartialSolution {
            round: self.engine.rounds(),
            items: parts.items().to_vec(),
            group_sums: parts.group_sums().to_vec(),
            objective: self.engine.value(),
            oracle_calls: parts.oracle_calls(),
            done: self.engine.is_done(),
        }
    }

    fn prefix_exact(&self) -> bool {
        true
    }

    fn solution_at(
        &self,
        system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError> {
        if k > self.k {
            return Err(SolverError::InvalidParams {
                solver: self.solver().to_string(),
                message: format!("session budget is k = {} (asked {k})", self.k),
            });
        }
        if k > self.engine.rounds() && !self.engine.is_done() {
            return Err(SolverError::InvalidParams {
                solver: self.solver().to_string(),
                message: format!(
                    "session has only run {} rounds (asked k = {k}); step it further",
                    self.engine.rounds()
                ),
            });
        }
        let r = k.min(self.engine.rounds());
        let items = self.parts().items()[..r].to_vec();
        let value = self.engine.value_at(k);
        // Mirrors `GreedySolver::solve` field for field, so warm
        // extraction is bit-identical to a cold run at budget `k`.
        let erased = ErasedSystem(system);
        let eval = evaluate(&erased, &items);
        let mut report = SolveReport::from_eval(self.solver(), k, self.tau, items, &eval, value);
        report.opt_f_estimate = value;
        report.oracle_calls = self.engine.calls_at(k);
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(report)
    }

    fn finish(&mut self, system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError> {
        while self.step(system) == SessionStatus::Running {}
        self.solution_at(system, self.k)
    }
}

/// Native Saturate session: one bisection probe per step.
pub struct SaturateSession {
    tau: f64,
    k: usize,
    stepper: SaturateStepper,
}

impl SaturateSession {
    /// Opens a session for the `Saturate` solver on `system`.
    pub fn open(system: &dyn DynUtilitySystem, params: &ScenarioParams) -> Self {
        let erased = ErasedSystem(system);
        Self {
            tau: params.tau,
            k: params.k,
            stepper: SaturateStepper::new(&erased, &saturate_config_for(params)),
        }
    }
}

/// Builds the Saturate configuration the adapters use (shared so the
/// session and the one-shot solver can never drift apart).
pub(crate) fn saturate_config_for(params: &ScenarioParams) -> SaturateConfig {
    let mut cfg = SaturateConfig::new(params.k);
    cfg.variant = params.variant.clone();
    if params.approximate_saturate {
        cfg = cfg.approximate_only();
    }
    cfg
}

impl SolveSession for SaturateSession {
    fn solver(&self) -> &'static str {
        "Saturate"
    }

    fn done(&self) -> bool {
        self.stepper.is_done()
    }

    fn rounds(&self) -> usize {
        self.stepper.rounds()
    }

    fn step(&mut self, system: &dyn DynUtilitySystem) -> SessionStatus {
        let erased = ErasedSystem(system);
        if self.stepper.step(&erased) {
            SessionStatus::Running
        } else {
            SessionStatus::Done
        }
    }

    fn snapshot(&self) -> PartialSolution {
        let (items, objective) = match self.stepper.best_witness() {
            Some((items, value)) => (items.to_vec(), value),
            None => (Vec::new(), 0.0),
        };
        PartialSolution {
            round: self.stepper.rounds(),
            items,
            group_sums: self.stepper.best_witness_sums().to_vec(),
            objective,
            oracle_calls: self.stepper.oracle_calls(),
            done: self.stepper.is_done(),
        }
    }

    fn solution_at(
        &self,
        system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError> {
        let run = match (k == self.k, self.stepper.outcome()) {
            (true, Some(run)) => run,
            (false, _) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: format!(
                        "Saturate sessions only serve their own budget k = {} (asked {k})",
                        self.k
                    ),
                })
            }
            (_, None) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: "session not finished; step it to completion first".into(),
                })
            }
        };
        // Mirrors `SaturateSolver::solve` field for field.
        let erased = ErasedSystem(system);
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.solver(),
            k,
            self.tau,
            run.items.clone(),
            &eval,
            run.opt_g_estimate,
        )
        .note("rounds", run.rounds as f64)
        .note("exact_path", if run.exact { 1.0 } else { 0.0 });
        report.opt_g_estimate = run.opt_g_estimate;
        report.oracle_calls = run.oracle_calls;
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(report)
    }

    fn finish(&mut self, system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError> {
        while self.step(system) == SessionStatus::Running {}
        self.solution_at(system, self.k)
    }
}

/// Native BSM-Saturate session: estimate stages, then one α probe per
/// step.
pub struct BsmSaturateSession {
    tau: f64,
    k: usize,
    stepper: BsmSaturateStepper,
}

impl BsmSaturateSession {
    /// Opens a session for the `BSM-Saturate` solver on `system`
    /// (parameters must already be validated).
    pub fn open(system: &dyn DynUtilitySystem, params: &ScenarioParams) -> Self {
        let erased = ErasedSystem(system);
        let mut cfg = BsmSaturateConfig::new(params.k, params.tau).with_epsilon(params.epsilon);
        cfg.variant = params.variant.clone();
        cfg.saturate = saturate_config_for(params);
        Self {
            tau: params.tau,
            k: params.k,
            stepper: BsmSaturateStepper::new(&erased, &cfg),
        }
    }
}

impl SolveSession for BsmSaturateSession {
    fn solver(&self) -> &'static str {
        "BSM-Saturate"
    }

    fn done(&self) -> bool {
        self.stepper.is_done()
    }

    fn rounds(&self) -> usize {
        self.stepper.rounds()
    }

    fn step(&mut self, system: &dyn DynUtilitySystem) -> SessionStatus {
        let erased = ErasedSystem(system);
        if self.stepper.step(&erased) {
            SessionStatus::Running
        } else {
            SessionStatus::Done
        }
    }

    fn snapshot(&self) -> PartialSolution {
        let (alpha_min, _) = self.stepper.alpha_bounds();
        PartialSolution {
            round: self.stepper.rounds(),
            items: self.stepper.best_items().to_vec(),
            group_sums: Vec::new(),
            objective: alpha_min,
            oracle_calls: self.stepper.oracle_calls(),
            done: self.stepper.is_done(),
        }
    }

    fn solution_at(
        &self,
        system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError> {
        let run = match (k == self.k, self.stepper.outcome()) {
            (true, Some(run)) => run,
            (false, _) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: format!(
                        "BSM-Saturate sessions only serve their own budget k = {} (asked {k})",
                        self.k
                    ),
                })
            }
            (_, None) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: "session not finished; step it to completion first".into(),
                })
            }
        };
        // Mirrors `BsmSaturateSolver::solve` field for field. The f/g
        // fields come from the outcome's own oracle-exact evaluation;
        // harness-style re-evaluation happens in the caller.
        let objective = run.bsm.eval.f;
        let mut report = SolveReport::from_eval(
            self.solver(),
            k,
            self.tau,
            run.bsm.items.clone(),
            &run.bsm.eval,
            objective,
        )
        .note("alpha_min", run.alpha_min)
        .note("alpha_max", run.alpha_max)
        .note("rounds", run.rounds as f64);
        report.opt_f_estimate = run.bsm.opt_f_estimate;
        report.opt_g_estimate = run.bsm.opt_g_estimate;
        report.fell_back = run.bsm.fell_back;
        report.oracle_calls = run.bsm.oracle_calls;
        let _ = system;
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(report)
    }

    fn finish(&mut self, system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError> {
        while self.step(system) == SessionStatus::Running {}
        self.solution_at(system, self.k)
    }
}

/// Native BSM-TSGreedy session: estimate stages, one stage-1 cover
/// round per step, then the top-up.
pub struct TsGreedySession {
    tau: f64,
    k: usize,
    steps: usize,
    stepper: TsGreedyStepper<DynState>,
}

impl TsGreedySession {
    /// Opens a session for the `BSM-TSGreedy` solver on `system`
    /// (parameters must already be validated).
    pub fn open(system: &dyn DynUtilitySystem, params: &ScenarioParams) -> Self {
        let erased = ErasedSystem(system);
        let mut cfg = TsGreedyConfig::new(params.k, params.tau);
        cfg.variant = params.variant.clone();
        cfg.saturate = saturate_config_for(params);
        Self {
            tau: params.tau,
            k: params.k,
            steps: 0,
            stepper: TsGreedyStepper::new(&erased, &cfg),
        }
    }
}

impl SolveSession for TsGreedySession {
    fn solver(&self) -> &'static str {
        "BSM-TSGreedy"
    }

    fn done(&self) -> bool {
        self.stepper.is_done()
    }

    fn rounds(&self) -> usize {
        self.steps
    }

    fn step(&mut self, system: &dyn DynUtilitySystem) -> SessionStatus {
        if self.stepper.is_done() {
            // Post-done steps are no-ops and must not inflate the round
            // counter (finish() always issues one trailing step).
            return SessionStatus::Done;
        }
        let erased = ErasedSystem(system);
        let running = self.stepper.step(&erased);
        self.steps += 1;
        if running {
            SessionStatus::Running
        } else {
            SessionStatus::Done
        }
    }

    fn snapshot(&self) -> PartialSolution {
        let items = self.stepper.current_items();
        PartialSolution {
            round: self.steps,
            items,
            group_sums: self.stepper.current_sums(),
            objective: self.stepper.current_f(),
            oracle_calls: self.stepper.oracle_calls(),
            done: self.stepper.is_done(),
        }
    }

    fn solution_at(
        &self,
        system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError> {
        let run = match (k == self.k, self.stepper.outcome()) {
            (true, Some(run)) => run,
            (false, _) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: format!(
                        "BSM-TSGreedy sessions only serve their own budget k = {} (asked {k})",
                        self.k
                    ),
                })
            }
            (_, None) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: "session not finished; step it to completion first".into(),
                })
            }
        };
        // Mirrors `TsGreedySolver::solve` field for field.
        let objective = run.bsm.eval.f;
        let mut report = SolveReport::from_eval(
            self.solver(),
            k,
            self.tau,
            run.bsm.items.clone(),
            &run.bsm.eval,
            objective,
        )
        .note("stage1_len", run.stage1_len as f64);
        report.opt_f_estimate = run.bsm.opt_f_estimate;
        report.opt_g_estimate = run.bsm.opt_g_estimate;
        report.fell_back = run.bsm.fell_back;
        report.oracle_calls = run.bsm.oracle_calls;
        let _ = system;
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(report)
    }

    fn finish(&mut self, system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError> {
        while self.step(system) == SessionStatus::Running {}
        self.solution_at(system, self.k)
    }
}

/// Native GreeDi session: one shard's restricted greedy per step, then
/// one merge step (round 2 over the union pool).
///
/// Replays [`crate::algorithms::distributed::greedi`] at shard-round
/// granularity: the partition comes from [`shard_partition`], every
/// shard run and the merge run go through `greedy_over_subset`, and
/// the final comparison through `merge_outcome` — the same three
/// pieces the one-shot algorithm is built from, so the finish report is
/// bit-identical to [`super::adapters::GreediSolver`]'s.
pub struct GreediSession {
    tau: f64,
    k: usize,
    shards: usize,
    variant: GreedyVariant,
    partition: Vec<Vec<ItemId>>,
    next_shard: usize,
    oracle_calls: u64,
    pool: Vec<ItemId>,
    best_shard: (f64, Vec<ItemId>),
    outcome: Option<GreediOutcome>,
    steps: usize,
}

impl GreediSession {
    /// Opens a session for the `GreeDi` solver on `system` (parameters
    /// must already be validated; no oracle work until the first step).
    pub fn open(system: &dyn DynUtilitySystem, params: &ScenarioParams) -> Self {
        let shards = params.shards.max(1);
        Self {
            tau: params.tau,
            k: params.k,
            shards,
            variant: params.variant.clone(),
            partition: shard_partition(system.dyn_num_items(), shards, params.seed),
            next_shard: 0,
            oracle_calls: 0,
            pool: Vec::with_capacity(shards * params.k),
            best_shard: (f64::NEG_INFINITY, Vec::new()),
            outcome: None,
            steps: 0,
        }
    }
}

impl SolveSession for GreediSession {
    fn solver(&self) -> &'static str {
        "GreeDi"
    }

    fn done(&self) -> bool {
        self.outcome.is_some()
    }

    fn rounds(&self) -> usize {
        self.steps
    }

    fn step(&mut self, system: &dyn DynUtilitySystem) -> SessionStatus {
        if self.done() {
            // Post-done steps are no-ops and must not inflate the round
            // counter (finish() always issues one trailing step).
            return SessionStatus::Done;
        }
        let erased = ErasedSystem(system);
        let f = MeanUtility::new(system.dyn_num_users());
        if self.next_shard < self.partition.len() {
            // Round 1, one shard: exactly the fold `greedi` performs.
            let members = &self.partition[self.next_shard];
            let run = greedy_over_subset(&erased, &f, members, self.k, self.variant.clone());
            self.oracle_calls += run.1;
            let value = run.2;
            if value > self.best_shard.0 {
                self.best_shard = (value, run.0.clone());
            }
            self.pool.extend(run.0);
            self.next_shard += 1;
            self.steps += 1;
            SessionStatus::Running
        } else {
            // Round 2 on the merged pool, then the final comparison.
            let round2 = greedy_over_subset(&erased, &f, &self.pool, self.k, self.variant.clone());
            self.oracle_calls += round2.1;
            self.outcome = Some(merge_outcome(
                round2,
                self.best_shard.clone(),
                self.oracle_calls,
            ));
            self.steps += 1;
            SessionStatus::Done
        }
    }

    fn snapshot(&self) -> PartialSolution {
        let (items, objective) = match &self.outcome {
            Some(run) => (run.items.clone(), run.value),
            None if self.best_shard.0.is_finite() => (self.best_shard.1.clone(), self.best_shard.0),
            None => (Vec::new(), 0.0),
        };
        PartialSolution {
            round: self.steps,
            items,
            group_sums: Vec::new(),
            objective,
            oracle_calls: self.oracle_calls,
            done: self.done(),
        }
    }

    fn solution_at(
        &self,
        system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError> {
        let run = match (k == self.k, &self.outcome) {
            (true, Some(run)) => run,
            (false, _) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: format!(
                        "GreeDi sessions only serve their own budget k = {} (asked {k})",
                        self.k
                    ),
                })
            }
            (_, None) => {
                return Err(SolverError::InvalidParams {
                    solver: self.solver().to_string(),
                    message: "session not finished; step it to completion first".into(),
                })
            }
        };
        // Mirrors `GreediSolver::solve` field for field.
        let erased = ErasedSystem(system);
        let eval = evaluate(&erased, &run.items);
        let mut report = SolveReport::from_eval(
            self.solver(),
            k,
            self.tau,
            run.items.clone(),
            &eval,
            run.value,
        )
        .note("shards", self.shards as f64)
        .note("best_shard_value", run.best_shard_value);
        report.oracle_calls = run.oracle_calls;
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(report)
    }

    fn finish(&mut self, system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError> {
        while self.step(system) == SessionStatus::Running {}
        self.solution_at(system, self.k)
    }
}

/// Native Sieve-Streaming session: one stream arrival per step.
///
/// Wraps the same `SieveCore` the one-shot free function drives, so
/// the grid of OPT guesses, acceptance thresholds, and oracle-call
/// accounting are shared by construction.
pub struct SieveSession {
    tau: f64,
    k: usize,
    core: SieveCore<DynState>,
    steps: usize,
}

impl SieveSession {
    /// Opens a session for the `SieveStreaming` solver on `system`
    /// (parameters must already be validated).
    pub fn open(system: &dyn DynUtilitySystem, params: &ScenarioParams) -> Self {
        let erased = ErasedSystem(system);
        let cfg = SieveConfig {
            k: params.k,
            epsilon: params.epsilon,
        };
        Self {
            tau: params.tau,
            k: params.k,
            core: SieveCore::new(&erased, &cfg),
            steps: 0,
        }
    }
}

impl SolveSession for SieveSession {
    fn solver(&self) -> &'static str {
        "SieveStreaming"
    }

    fn done(&self) -> bool {
        self.core.done()
    }

    fn rounds(&self) -> usize {
        self.steps
    }

    fn step(&mut self, system: &dyn DynUtilitySystem) -> SessionStatus {
        if self.core.done() {
            // Post-done steps are no-ops and must not inflate the round
            // counter (finish() always issues one trailing step).
            return SessionStatus::Done;
        }
        let erased = ErasedSystem(system);
        let f = MeanUtility::new(system.dyn_num_users());
        self.core.step(&erased, &f);
        self.steps += 1;
        if self.core.done() {
            SessionStatus::Done
        } else {
            SessionStatus::Running
        }
    }

    fn snapshot(&self) -> PartialSolution {
        let run = self.core.outcome();
        PartialSolution {
            round: self.steps,
            items: run.items,
            group_sums: Vec::new(),
            objective: run.value,
            oracle_calls: run.oracle_calls,
            done: self.core.done(),
        }
    }

    fn solution_at(
        &self,
        system: &dyn DynUtilitySystem,
        k: usize,
    ) -> Result<SolveReport, SolverError> {
        if k != self.k {
            return Err(SolverError::InvalidParams {
                solver: self.solver().to_string(),
                message: format!(
                    "SieveStreaming sessions only serve their own budget k = {} (asked {k})",
                    self.k
                ),
            });
        }
        if !self.core.done() {
            return Err(SolverError::InvalidParams {
                solver: self.solver().to_string(),
                message: "session not finished; step it to completion first".into(),
            });
        }
        // Mirrors `SieveStreamingSolver::solve` field for field.
        let run = self.core.outcome();
        let erased = ErasedSystem(system);
        let eval = evaluate(&erased, &run.items);
        let mut report =
            SolveReport::from_eval(self.solver(), k, self.tau, run.items, &eval, run.value)
                .note("candidates", run.candidates as f64);
        report.oracle_calls = run.oracle_calls;
        report.gain_kernel = system.dyn_gain_kernel().to_string();
        Ok(report)
    }

    fn finish(&mut self, system: &dyn DynUtilitySystem) -> Result<SolveReport, SolverError> {
        while self.step(system) == SessionStatus::Running {}
        self.solution_at(system, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::super::SolverRegistry;
    use super::*;
    use crate::toy;

    fn strip_seconds(mut report: SolveReport) -> SolveReport {
        report.seconds = 0.0;
        report
    }

    #[test]
    fn greedy_session_prefixes_match_cold_runs() {
        let sys = toy::random_coverage(30, 90, 3, 0.1, 4);
        let registry = SolverRegistry::default();
        let params = ScenarioParams::new(7, 0.5);
        let mut session = GreedySession::open(&sys, &params);
        assert!(session.prefix_exact());
        // Not stepped far enough yet: k beyond the current round errors.
        assert!(session.solution_at(&sys, 5).is_err());
        while session.step(&sys) == SessionStatus::Running {}
        for k in 0..=7usize {
            let mut cold_params = params.clone();
            cold_params.k = k;
            let cold = strip_seconds(registry.solve("Greedy", &sys, &cold_params).unwrap());
            let warm = session.solution_at(&sys, k).unwrap();
            assert_eq!(warm, cold, "k = {k}");
        }
        assert!(session.solution_at(&sys, 8).is_err(), "beyond the budget");
    }

    #[test]
    fn native_sessions_finish_bit_identically_to_one_shot_solves() {
        let sys = toy::random_coverage(24, 72, 2, 0.12, 9);
        let registry = SolverRegistry::default();
        let params = ScenarioParams::new(4, 0.7);
        for name in ["Greedy", "Saturate", "BSM-Saturate", "BSM-TSGreedy"] {
            let one_shot = strip_seconds(registry.solve(name, &sys, &params).unwrap());
            let mut session = registry.open_session(name, &sys, &params).unwrap();
            assert_eq!(session.solver(), name);
            let report = session.finish(&sys).unwrap();
            assert_eq!(report, one_shot, "{name}");
        }
    }

    #[test]
    fn sessions_report_progress_between_steps() {
        let sys = toy::random_coverage(20, 60, 2, 0.15, 2);
        let params = ScenarioParams::new(5, 0.5);
        let mut session = GreedySession::open(&sys, &params);
        let before = session.snapshot();
        assert_eq!(before.round, 0);
        assert!(!before.done);
        session.step(&sys);
        let after = session.snapshot();
        assert_eq!(after.round, 1);
        assert_eq!(after.items.len(), 1);
        assert!(after.oracle_calls > 0);
        assert_eq!(after.group_sums.len(), 2);
    }

    #[test]
    fn one_shot_sessions_wrap_non_resumable_solvers() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let params = ScenarioParams::new(2, 0.5);
        let mut session = registry.open_session("MWU", &sys, &params).unwrap();
        assert!(session.done());
        assert!(!session.prefix_exact());
        assert_eq!(session.step(&sys), SessionStatus::Done);
        let report = session.finish(&sys).unwrap();
        let one_shot = strip_seconds(registry.solve("MWU", &sys, &params).unwrap());
        assert_eq!(report, one_shot);
        assert!(session.solution_at(&sys, 1).is_err());
    }

    #[test]
    fn open_session_propagates_typed_errors() {
        let sys = toy::figure1();
        let registry = SolverRegistry::default();
        let bad_tau = ScenarioParams::new(2, 1.5);
        for name in ["BSM-Saturate", "BSM-TSGreedy"] {
            let err = registry
                .open_session(name, &sys, &bad_tau)
                .err()
                .expect("invalid tau must be rejected");
            assert!(matches!(err, SolverError::InvalidParams { .. }), "{name}");
        }
        let err = registry
            .open_session("NotASolver", &sys, &ScenarioParams::new(2, 0.5))
            .err()
            .expect("unknown solver must be rejected");
        assert!(matches!(err, SolverError::UnknownSolver { .. }));
    }
}
