//! The scenario engine: one uniform execution boundary over the whole
//! solver suite.
//!
//! The paper's experiments form a grid of `(dataset, algorithm, k, τ)`
//! cells, and production workloads generalize that grid to arbitrary
//! scenarios. Historically every consumer of [`crate::algorithms`]
//! re-encoded the suite by hand — one `match` per algorithm, one config
//! type per call site. This module replaces that with three pieces:
//!
//! * **Type erasure** ([`DynUtilitySystem`] / [`ErasedSystem`]) — an
//!   object-safe view of [`crate::system::UtilitySystem`] so solvers
//!   can run behind trait objects while the generic algorithms (and
//!   their parallel batch overrides) execute unchanged.
//! * **The [`Solver`] trait + [`SolverRegistry`]** — every algorithm
//!   entry point wrapped as a named, capability-flagged adapter
//!   ([`adapters`]) with a uniform
//!   `solve(&dyn DynUtilitySystem, &ScenarioParams) -> SolveReport`
//!   boundary. Capability gaps (SMSC needs `c = 2`, exact solvers cap
//!   instance sizes) are typed [`SolverError`]s, never panics.
//! * **Serializable cells** — [`ScenarioParams`] and [`SolveReport`]
//!   round-trip through the serde shim's JSON layer, so scenario specs
//!   and results persist as artifacts.
//! * **Resumable sessions** ([`session`]) — every solver opens as a
//!   [`SolveSession`] state machine (`step`/`snapshot`/`solution_at`);
//!   the greedy family, Saturate, both BSM schemes, GreeDi, and
//!   Sieve-Streaming step natively ([`Capabilities::resumable`]), and
//!   greedy sessions serve an entire budget axis from one warm run via
//!   exact prefix extraction.
//! * **The sharded tier** ([`sharded`]) — [`ShardedInstance`] holds an
//!   instance as per-shard oracles plus a merge builder (no full-ground-
//!   set oracle ever exists) and solves it with two-round GreeDi,
//!   bit-identically to the centralized algorithm.
//!
//! ```
//! use fair_submod_core::engine::{ScenarioParams, SolverRegistry};
//! use fair_submod_core::toy;
//!
//! let system = toy::figure1();
//! let registry = SolverRegistry::default();
//! let report = registry
//!     .solve("BSM-Saturate", &system, &ScenarioParams::new(2, 0.8))
//!     .unwrap();
//! assert_eq!(report.items.len(), 2);
//! assert!(report.weakly_feasible());
//! ```

pub mod adapters;
mod erased;
mod params;
mod registry;
mod report;
pub mod session;
pub mod sharded;

pub use erased::{DynState, DynUtilitySystem, ErasedSystem};
pub use params::ScenarioParams;
pub use registry::{Capabilities, Solver, SolverRegistry};
pub use report::{SolveReport, SolverError};
pub use session::{OneShotSession, PartialSolution, SessionStatus, SolveSession};
pub use sharded::{
    validate_shard_members, validate_shard_partition, MergeBuilder, ShardBuilder, ShardOracle,
    ShardedGreediSession, ShardedInstance, ShardedSieveSession, SpillPolicy, SubsetSystem,
};
