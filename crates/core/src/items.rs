//! Item identifiers and small solution-set containers.

use serde::{Deserialize, Serialize};

/// Identifier of an item in the ground set `V`, indexed `0..n`.
///
/// `u32` keeps hot per-item bookkeeping compact; ground sets beyond
/// 4 billion items are far outside the scope of this library.
pub type ItemId = u32;

/// A solution set `S ⊆ V` with `O(1)` membership tests and insertion order.
///
/// Greedy-style algorithms grow solutions one item at a time and need both
/// the insertion order (BSM-TSGreedy replays the greedy-for-`f` prefix) and
/// fast `contains` checks. `ItemSet` stores both: a dense membership bitmap
/// over the ground set and the ordered list of chosen items.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ItemSet {
    order: Vec<ItemId>,
    member: Vec<bool>,
}

impl ItemSet {
    /// Creates an empty set over a ground set of `n` items.
    pub fn new(n: usize) -> Self {
        Self {
            order: Vec::new(),
            member: vec![false; n],
        }
    }

    /// Creates a set over `n` items pre-populated with `items` (in order).
    ///
    /// Duplicates are ignored after their first occurrence.
    pub fn from_items(n: usize, items: &[ItemId]) -> Self {
        let mut s = Self::new(n);
        for &v in items {
            s.insert(v);
        }
        s
    }

    /// Size of the ground set this set ranges over.
    pub fn ground_size(&self) -> usize {
        self.member.len()
    }

    /// Number of items in the set.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Whether `item` is in the set.
    #[inline]
    pub fn contains(&self, item: ItemId) -> bool {
        self.member[item as usize]
    }

    /// Inserts `item`; returns `true` if it was newly added.
    ///
    /// # Panics
    /// Panics if `item` is outside the ground set.
    pub fn insert(&mut self, item: ItemId) -> bool {
        let slot = &mut self.member[item as usize];
        if *slot {
            return false;
        }
        *slot = true;
        self.order.push(item);
        true
    }

    /// Items in insertion order.
    pub fn items(&self) -> &[ItemId] {
        &self.order
    }

    /// Items in ascending id order (useful for canonical comparisons).
    pub fn sorted_items(&self) -> Vec<ItemId> {
        let mut v = self.order.clone();
        v.sort_unstable();
        v
    }

    /// Iterates over the items in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.order.iter().copied()
    }
}

/// Enumerates all `C(n, k)` subsets of `0..n` of size `k`, calling `visit`
/// with each subset (ascending order). Used by the brute-force solvers.
///
/// `visit` may return `false` to stop the enumeration early.
pub fn for_each_subset(n: usize, k: usize, mut visit: impl FnMut(&[ItemId]) -> bool) {
    if k > n {
        return;
    }
    if k == 0 {
        visit(&[]);
        return;
    }
    let mut idx: Vec<ItemId> = (0..k as ItemId).collect();
    loop {
        if !visit(&idx) {
            return;
        }
        // Advance to next combination in lexicographic order.
        let mut i = k;
        loop {
            if i == 0 {
                return;
            }
            i -= 1;
            if idx[i] < (n - k + i) as ItemId {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Number of subsets `C(n, k)` as `f64` (saturating; used only for
/// feasibility heuristics in the exact solvers).
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itemset_insert_and_contains() {
        let mut s = ItemSet::new(5);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(0));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert_eq!(s.items(), &[3, 0]);
        assert_eq!(s.sorted_items(), vec![0, 3]);
    }

    #[test]
    fn itemset_from_items_dedups() {
        let s = ItemSet::from_items(4, &[1, 2, 1, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.items(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn itemset_out_of_range_panics() {
        let mut s = ItemSet::new(2);
        s.insert(2);
    }

    #[test]
    fn subset_enumeration_counts() {
        let mut count = 0usize;
        for_each_subset(5, 2, |s| {
            assert_eq!(s.len(), 2);
            assert!(s[0] < s[1]);
            count += 1;
            true
        });
        assert_eq!(count, 10);
    }

    #[test]
    fn subset_enumeration_edge_cases() {
        let mut count = 0;
        for_each_subset(3, 0, |_| {
            count += 1;
            true
        });
        assert_eq!(count, 1);
        count = 0;
        for_each_subset(3, 4, |_| {
            count += 1;
            true
        });
        assert_eq!(count, 0);
        count = 0;
        for_each_subset(4, 4, |s| {
            assert_eq!(s, &[0, 1, 2, 3]);
            count += 1;
            true
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn subset_enumeration_early_stop() {
        let mut count = 0;
        for_each_subset(6, 3, |_| {
            count += 1;
            count < 5
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(10, 0), 1.0);
        assert_eq!(binomial(4, 5), 0.0);
        assert!((binomial(52, 5) - 2_598_960.0).abs() < 1e-6);
    }
}
