//! The oracle abstraction: grouped multi-user submodular utility systems.
//!
//! Every application in the paper — maximum coverage, influence
//! maximization, facility location — boils down to a family of per-user
//! monotone submodular utilities `f_u` whose *per-group sums* can be
//! evaluated incrementally as a solution set grows. [`UtilitySystem`]
//! captures exactly that contract, and [`SolutionState`] provides the
//! shared bookkeeping (group sums, membership, oracle-call accounting) so
//! each application only implements the marginal-gain kernel.

use crate::items::{ItemId, ItemSet};

/// A grouped multi-user utility system with incremental evaluation.
///
/// Implementors model `m` users partitioned into `c` groups, each user `u`
/// holding a normalized (`f_u(∅)=0`), monotone, submodular utility
/// `f_u : 2^V → R≥0`. The system exposes, for a growing solution `S`:
///
/// * `group_gains(inner, v)` — the vector
///   `Δ_i(v | S) = Σ_{u∈U_i} [f_u(S ∪ {v}) − f_u(S)]` for every group `i`;
/// * `apply(inner, v)` — commit `v` into the incremental state.
///
/// All composite objectives of the paper are computed from per-group sums
/// by an [`crate::aggregate::Aggregate`], so implementors never deal with
/// `τ`, truncations, or fairness logic.
///
/// # Contract
///
/// * `group_gains` must be non-negative (monotonicity) and must not mutate
///   observable state.
/// * For any state `S ⊆ T` (as multisets of applied items) and item `v`,
///   `Δ_i(v|S) ≥ Δ_i(v|T)` per group (submodularity). Property tests in the
///   application crates check both.
/// * Applying the same item twice must be a no-op in value (idempotence);
///   algorithms in this crate never do so, but exact solvers rely on it
///   being harmless.
pub trait UtilitySystem {
    /// Incremental evaluation state (e.g. per-user coverage flags or
    /// per-user current-best benefits). Must be cheap-ish to clone: the
    /// exact solvers and lazy evaluation clone states.
    type Inner: Clone;

    /// Number of items in the ground set `V`.
    fn num_items(&self) -> usize;

    /// Number of users `m`.
    fn num_users(&self) -> usize;

    /// Sizes `m_i` of the `c` user groups. The returned slice has length
    /// `c ≥ 1` and sums to `num_users()`.
    fn group_sizes(&self) -> &[usize];

    /// Number of groups `c`.
    fn num_groups(&self) -> usize {
        self.group_sizes().len()
    }

    /// Fresh evaluation state for `S = ∅`.
    fn init_inner(&self) -> Self::Inner;

    /// Writes the per-group marginal sum gains of adding `item` to the
    /// current state into `out` (length `num_groups()`, fully overwritten).
    fn group_gains(&self, inner: &Self::Inner, item: ItemId, out: &mut [f64]);

    /// Writes the per-group marginal gains of **many** candidate items at
    /// once: row `j` of `out` (length `items.len() · num_groups()`,
    /// row-major, fully overwritten) receives `group_gains(inner,
    /// items[j])`.
    ///
    /// This is the batching seam the parallel algorithms drive: one call
    /// per greedy round instead of one per candidate. The default is a
    /// sequential loop; implementors may override it (e.g. with
    /// [`parallel_group_gains`]) **provided the result is bit-identical**
    /// to the default — each row must equal exactly what `group_gains`
    /// writes for that item, so batching can never change selections.
    ///
    /// Each row counts as one oracle call; [`SolutionState`] accounts for
    /// the whole batch in a single `items.len()` increment.
    fn group_gains_batch(&self, inner: &Self::Inner, items: &[ItemId], out: &mut [f64]) {
        let c = self.num_groups();
        assert_eq!(out.len(), items.len() * c, "batch output shape mismatch");
        for (row, &v) in out.chunks_mut(c).zip(items) {
            self.group_gains(inner, v, row);
        }
    }

    /// Commits `item` into the state.
    fn apply(&self, inner: &mut Self::Inner, item: ItemId);

    /// Short label for the marginal-gain evaluation strategy this system
    /// uses — `"rescan"` (the default: every `group_gains` call walks the
    /// item's footprint) or `"incremental_counters"` / `"active_set"` for
    /// the decremental fast paths (DESIGN.md §9). Purely diagnostic: the
    /// engine copies it into [`crate::engine::SolveReport::gain_kernel`]
    /// so benchmark output shows which kernel produced a number. Must not
    /// affect values.
    fn gain_kernel(&self) -> &'static str {
        "rescan"
    }

    /// Approximate resident footprint of the oracle's own data
    /// structures, in bytes. Purely advisory: the serving layer's
    /// byte-budgeted instance store (DESIGN.md §11) evicts against the
    /// sum of these estimates, so an implementor should count its
    /// dominant arrays (arenas, indexes, counters) and may ignore small
    /// metadata. The default `0` means "unknown / negligible" — such
    /// systems are admitted for free and never trigger byte-budget
    /// eviction on their own. Must not affect values.
    fn approx_bytes(&self) -> usize {
        0
    }
}

/// Row-parallel batch gain evaluation: the standard building block for
/// [`UtilitySystem::group_gains_batch`] overrides.
///
/// Splits the output matrix into contiguous row blocks and evaluates
/// each block's `group_gains` on a worker thread. Every row is an
/// independent pure function of `(inner, item)` written to its own
/// disjoint slice, so the result is bit-identical to the sequential
/// default for **any** thread count — parallelism here can change
/// wall-clock time only, never values or downstream selections.
///
/// Small batches (or a 1-thread configuration) take an inline
/// sequential path to avoid spawn overhead on hot greedy rounds.
pub fn parallel_group_gains<S>(system: &S, inner: &S::Inner, items: &[ItemId], out: &mut [f64])
where
    S: UtilitySystem + Sync,
    S::Inner: Sync,
{
    use rayon::prelude::*;

    let c = system.num_groups();
    assert_eq!(out.len(), items.len() * c, "batch output shape mismatch");
    const MIN_PARALLEL_ROWS: usize = 64;
    if items.len() < MIN_PARALLEL_ROWS || rayon::current_num_threads() <= 1 {
        for (row, &v) in out.chunks_mut(c).zip(items) {
            system.group_gains(inner, v, row);
        }
        return;
    }
    // ~2 blocks per worker bounds imbalance without over-fragmenting.
    let blocks = (2 * rayon::current_num_threads()).min(items.len());
    let rows_per_block = items.len().div_ceil(blocks);
    out.par_chunks_mut(rows_per_block * c)
        .enumerate()
        .for_each(|(b, block)| {
            let start = b * rows_per_block;
            for (j, row) in block.chunks_mut(c).enumerate() {
                system.group_gains(inner, items[start + j], row);
            }
        });
}

/// Blanket convenience methods for utility systems.
pub trait SystemExt: UtilitySystem + Sized {
    /// Evaluates the utility objective `f(S) = (1/m) Σ_u f_u(S)`.
    fn eval_f(&self, items: &[ItemId]) -> f64 {
        crate::metrics::evaluate(self, items).f
    }

    /// Evaluates the fairness objective `g(S) = min_i f_i(S)`.
    fn eval_g(&self, items: &[ItemId]) -> f64 {
        crate::metrics::evaluate(self, items).g
    }
}

impl<S: UtilitySystem + Sized> SystemExt for S {}

/// Growing-solution bookkeeping shared by every algorithm.
///
/// Maintains the application's incremental state, the per-group utility
/// sums `Σ_{u∈U_i} f_u(S)`, the chosen item set, and an oracle-call
/// counter (one call = one `group_gains` evaluation, matching the
/// function-evaluation accounting used in the paper's experiments).
pub struct SolutionState<'a, S: UtilitySystem + ?Sized> {
    system: &'a S,
    inner: S::Inner,
    group_sums: Vec<f64>,
    set: ItemSet,
    scratch: Vec<f64>,
    oracle_calls: u64,
}

impl<'a, S: UtilitySystem> SolutionState<'a, S> {
    /// Fresh empty solution over `system`.
    pub fn new(system: &'a S) -> Self {
        let c = system.num_groups();
        Self {
            system,
            inner: system.init_inner(),
            group_sums: vec![0.0; c],
            set: ItemSet::new(system.num_items()),
            scratch: vec![0.0; c],
            oracle_calls: 0,
        }
    }

    /// The underlying system.
    pub fn system(&self) -> &'a S {
        self.system
    }

    /// Current per-group utility sums `Σ_{u∈U_i} f_u(S)`.
    pub fn group_sums(&self) -> &[f64] {
        &self.group_sums
    }

    /// Chosen items in insertion order.
    pub fn items(&self) -> &[ItemId] {
        self.set.items()
    }

    /// Number of chosen items.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the solution is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Whether `item` is already chosen.
    pub fn contains(&self, item: ItemId) -> bool {
        self.set.contains(item)
    }

    /// Total `group_gains` evaluations performed through this state.
    pub fn oracle_calls(&self) -> u64 {
        self.oracle_calls
    }

    /// Per-group marginal sum gains of adding `item`, written into `out`.
    pub fn gains_into(&mut self, item: ItemId, out: &mut [f64]) {
        self.oracle_calls += 1;
        self.system.group_gains(&self.inner, item, out);
    }

    /// Per-group marginal gains of every item of `items`, written
    /// row-major into `out` (shape `items.len() × num_groups()`) via
    /// [`UtilitySystem::group_gains_batch`].
    ///
    /// Counts exactly `items.len()` oracle calls — one per row — in a
    /// single increment, so batched (possibly multi-threaded) evaluation
    /// reports the same call totals as an item-by-item loop.
    pub fn gains_batch_into(&mut self, items: &[ItemId], out: &mut [f64]) {
        self.oracle_calls += items.len() as u64;
        self.system.group_gains_batch(&self.inner, items, out);
    }

    /// Marginal gain of `item` under `aggregate`.
    pub fn gain(&mut self, aggregate: &impl crate::aggregate::Aggregate, item: ItemId) -> f64 {
        self.oracle_calls += 1;
        let mut scratch = std::mem::take(&mut self.scratch);
        self.system.group_gains(&self.inner, item, &mut scratch);
        let gain = aggregate.gain(&self.group_sums, &scratch);
        self.scratch = scratch;
        gain
    }

    /// Current objective value under `aggregate`.
    pub fn value(&self, aggregate: &impl crate::aggregate::Aggregate) -> f64 {
        aggregate.value(&self.group_sums)
    }

    /// Inserts `item`, updating the incremental state and group sums.
    /// Returns `false` (and changes nothing) if already present.
    pub fn insert(&mut self, item: ItemId) -> bool {
        if self.set.contains(item) {
            return false;
        }
        self.oracle_calls += 1;
        let mut scratch = std::mem::take(&mut self.scratch);
        self.system.group_gains(&self.inner, item, &mut scratch);
        for (sum, gain) in self.group_sums.iter_mut().zip(scratch.iter()) {
            *sum += *gain;
        }
        self.scratch = scratch;
        self.system.apply(&mut self.inner, item);
        self.set.insert(item);
        true
    }

    /// Inserts every item of `items` (duplicates skipped).
    pub fn insert_all(&mut self, items: &[ItemId]) {
        for &v in items {
            self.insert(v);
        }
    }
}

/// The owned pieces of a [`SolutionState`] with the system borrow
/// stripped: what a resumable session keeps between steps.
///
/// A `SolutionState` borrows its system for its whole lifetime, which
/// makes it impossible to store inside a `'static` session object that
/// *also* owns (a handle to) the system. Sessions therefore park the
/// state as `StateParts` between steps and rehydrate it with
/// [`SolutionState::from_parts`] against the system reference each step
/// receives. Both conversions are plain moves — no clones, no oracle
/// calls — so a step sequence through parts is bit-identical to holding
/// one state across the whole run.
pub(crate) struct StateParts<I> {
    inner: I,
    group_sums: Vec<f64>,
    set: ItemSet,
    scratch: Vec<f64>,
    oracle_calls: u64,
}

impl<I> StateParts<I> {
    /// Chosen items in insertion order.
    pub(crate) fn items(&self) -> &[ItemId] {
        self.set.items()
    }

    /// Current per-group utility sums.
    pub(crate) fn group_sums(&self) -> &[f64] {
        &self.group_sums
    }

    /// Oracle calls accumulated by the parked state.
    pub(crate) fn oracle_calls(&self) -> u64 {
        self.oracle_calls
    }
}

impl<'a, S: UtilitySystem> SolutionState<'a, S> {
    /// Splits the state into its system-independent parts.
    pub(crate) fn into_parts(self) -> StateParts<S::Inner> {
        StateParts {
            inner: self.inner,
            group_sums: self.group_sums,
            set: self.set,
            scratch: self.scratch,
            oracle_calls: self.oracle_calls,
        }
    }

    /// Rebuilds a state from parts previously produced by
    /// [`SolutionState::into_parts`] over the **same** system (the
    /// incremental `inner` state is only meaningful against the system
    /// that produced it).
    pub(crate) fn from_parts(system: &'a S, parts: StateParts<S::Inner>) -> Self {
        Self {
            system,
            inner: parts.inner,
            group_sums: parts.group_sums,
            set: parts.set,
            scratch: parts.scratch,
            oracle_calls: parts.oracle_calls,
        }
    }
}

impl<'a, S: UtilitySystem> Clone for SolutionState<'a, S> {
    fn clone(&self) -> Self {
        Self {
            system: self.system,
            inner: self.inner.clone(),
            group_sums: self.group_sums.clone(),
            set: self.set.clone(),
            scratch: self.scratch.clone(),
            oracle_calls: self.oracle_calls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::MeanUtility;
    use crate::toy;

    #[test]
    fn state_tracks_group_sums() {
        let sys = toy::figure1();
        let mut st = SolutionState::new(&sys);
        assert_eq!(st.group_sums(), &[0.0, 0.0]);
        assert!(st.insert(0)); // v1 covers u11..u15: 5 users of group 1
        assert_eq!(st.group_sums(), &[5.0, 0.0]);
        assert!(st.insert(3)); // v4 covers u22,u23: 2 users of group 2
        assert_eq!(st.group_sums(), &[5.0, 2.0]);
        assert!(!st.insert(3));
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn state_gain_matches_insert_delta() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        let mut st = SolutionState::new(&sys);
        let before = st.value(&f);
        let gain = st.gain(&f, 1);
        st.insert(1);
        let after = st.value(&f);
        assert!((after - before - gain).abs() < 1e-12);
    }

    #[test]
    fn oracle_calls_are_counted() {
        let sys = toy::figure1();
        let f = MeanUtility::new(sys.num_users());
        let mut st = SolutionState::new(&sys);
        assert_eq!(st.oracle_calls(), 0);
        let _ = st.gain(&f, 0);
        st.insert(2);
        assert_eq!(st.oracle_calls(), 2);
    }

    #[test]
    fn batch_gains_match_per_item_and_count_once_each() {
        let sys = toy::figure1();
        let c = sys.num_groups();
        let mut st = SolutionState::new(&sys);
        st.insert(1);
        let calls_before = st.oracle_calls();
        let items: Vec<u32> = (0..4).collect();
        let mut batch = vec![0.0; items.len() * c];
        st.gains_batch_into(&items, &mut batch);
        assert_eq!(st.oracle_calls(), calls_before + items.len() as u64);
        let mut row = vec![0.0; c];
        for (j, &v) in items.iter().enumerate() {
            st.gains_into(v, &mut row);
            assert_eq!(&batch[j * c..(j + 1) * c], &row[..], "item {v}");
        }
    }

    #[test]
    fn parallel_group_gains_matches_sequential_default() {
        let sys = toy::random_coverage(200, 300, 3, 0.05, 9);
        let c = sys.num_groups();
        let mut inner = sys.init_inner();
        sys.apply(&mut inner, 0);
        sys.apply(&mut inner, 17);
        let items: Vec<u32> = (0..200).collect();
        let mut seq = vec![0.0; items.len() * c];
        sys.group_gains_batch(&inner, &items, &mut seq);
        for threads in [1usize, 5] {
            rayon::set_num_threads(threads);
            let mut par = vec![0.0; items.len() * c];
            parallel_group_gains(&sys, &inner, &items, &mut par);
            rayon::set_num_threads(0);
            assert!(
                seq.iter()
                    .zip(&par)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "parallel batch diverged at {threads} threads"
            );
        }
    }
}
