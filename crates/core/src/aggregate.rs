//! Composite objectives over per-group utility sums.
//!
//! All objectives of the paper are *aggregates*: pure functions of the
//! per-group utility sums `σ_i = Σ_{u∈U_i} f_u(S)` maintained by
//! [`crate::system::SolutionState`]. This file implements:
//!
//! | Aggregate | Paper object | Submodular? |
//! |---|---|---|
//! | [`MeanUtility`] | `f(S) = (1/m) Σ_u f_u(S)` (Eq. 1) | yes |
//! | [`GroupMeanUtility`] | `f_i(S) = (1/m_i) Σ_{u∈U_i} f_u(S)` | yes |
//! | [`MinGroupUtility`] | `g(S) = min_i f_i(S)` (Eq. 2) | **no** (evaluation only) |
//! | [`TruncatedMean`] | Saturate's `ḡ_t`, TSGreedy's `g'_τ`, SMSC's panel | yes |
//! | [`BsmObjective`] | BSM-Saturate's `F'_α` (Lemma 4.4) | yes |
//!
//! Submodularity of the greedy-optimized aggregates follows because each is
//! a non-negative linear combination of truncations `min{t, h(S)}` of
//! monotone submodular functions (Krause & Golovin, 2014); the property
//! tests in this crate and in the application crates verify it empirically.

/// A scalar objective computed from per-group utility sums.
///
/// `sums[i]` is `Σ_{u∈U_i} f_u(S)`; `gains[i]` is the per-group marginal
/// sum gain of a candidate item. Implementations must be consistent:
/// `gain(sums, gains) == value(sums ⊕ gains) − value(sums)` up to floating
/// point error, where `⊕` is element-wise addition.
pub trait Aggregate {
    /// Objective value at the solution with per-group sums `sums`.
    fn value(&self, sums: &[f64]) -> f64;

    /// Marginal objective gain when per-group sums increase by `gains`.
    fn gain(&self, sums: &[f64], gains: &[f64]) -> f64;

    /// The value at which the objective saturates (cannot increase
    /// further), if any. Greedy uses this for early termination — e.g.
    /// `1.0` for [`TruncatedMean`], `2.0` for [`BsmObjective`].
    fn saturation_value(&self) -> Option<f64> {
        None
    }
}

/// Aggregates are stateless value functions, so a shared reference is as
/// good as the value itself. This blanket impl lets owners and borrowers
/// share one code path: the resumable algorithm steppers own their
/// aggregate (sessions outlive the call frame), while the historical free
/// functions pass `&A` straight through.
impl<A: Aggregate + ?Sized> Aggregate for &A {
    fn value(&self, sums: &[f64]) -> f64 {
        (**self).value(sums)
    }

    fn gain(&self, sums: &[f64], gains: &[f64]) -> f64 {
        (**self).gain(sums, gains)
    }

    fn saturation_value(&self) -> Option<f64> {
        (**self).saturation_value()
    }
}

/// The utility objective `f(S) = (1/m) Σ_{u} f_u(S)` (Eq. 1 of the paper).
#[derive(Clone, Debug)]
pub struct MeanUtility {
    inv_m: f64,
}

impl MeanUtility {
    /// Mean utility over `m` users.
    pub fn new(m: usize) -> Self {
        assert!(m > 0, "at least one user required");
        Self {
            inv_m: 1.0 / m as f64,
        }
    }
}

impl Aggregate for MeanUtility {
    fn value(&self, sums: &[f64]) -> f64 {
        sums.iter().sum::<f64>() * self.inv_m
    }

    fn gain(&self, _sums: &[f64], gains: &[f64]) -> f64 {
        gains.iter().sum::<f64>() * self.inv_m
    }
}

/// A single group's mean utility `f_i(S) = (1/m_i) Σ_{u∈U_i} f_u(S)`.
///
/// Used by the SMSC baseline (which maximizes the two group utilities
/// simultaneously) and by per-group reporting.
#[derive(Clone, Debug)]
pub struct GroupMeanUtility {
    group: usize,
    inv_mi: f64,
}

impl GroupMeanUtility {
    /// Mean utility of group `group` with `m_i = size` users.
    pub fn new(group: usize, size: usize) -> Self {
        assert!(size > 0, "group {group} is empty");
        Self {
            group,
            inv_mi: 1.0 / size as f64,
        }
    }
}

impl Aggregate for GroupMeanUtility {
    fn value(&self, sums: &[f64]) -> f64 {
        sums[self.group] * self.inv_mi
    }

    fn gain(&self, _sums: &[f64], gains: &[f64]) -> f64 {
        gains[self.group] * self.inv_mi
    }
}

/// The fairness objective `g(S) = min_i f_i(S)` (Eq. 2 of the paper).
///
/// **Not submodular** — this is the entire difficulty of BSM. It is used
/// for evaluation, for exact solvers, and as the bisection target inside
/// Saturate, never as a greedy surrogate.
#[derive(Clone, Debug)]
pub struct MinGroupUtility {
    inv_sizes: Vec<f64>,
}

impl MinGroupUtility {
    /// Maximin objective over groups with the given sizes.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty());
        Self {
            inv_sizes: sizes
                .iter()
                .map(|&s| {
                    assert!(s > 0, "empty group");
                    1.0 / s as f64
                })
                .collect(),
        }
    }
}

impl Aggregate for MinGroupUtility {
    fn value(&self, sums: &[f64]) -> f64 {
        sums.iter()
            .zip(&self.inv_sizes)
            .map(|(&s, &w)| s * w)
            .fold(f64::INFINITY, f64::min)
    }

    fn gain(&self, sums: &[f64], gains: &[f64]) -> f64 {
        let after = sums
            .iter()
            .zip(gains)
            .zip(&self.inv_sizes)
            .map(|((&s, &g), &w)| (s + g) * w)
            .fold(f64::INFINITY, f64::min);
        after - self.value(sums)
    }
}

/// Truncated mean-utility panel
/// `(1/c) Σ_i min{1, f_i(S) / t_i}` with per-group thresholds `t_i > 0`.
///
/// Three roles in the paper:
/// * Saturate's inner objective `ḡ_t` (uniform threshold `t`);
/// * BSM-TSGreedy's `g'_τ` (uniform threshold `τ·OPT'_g`, Alg. 1 line 4);
/// * the SMSC baseline's simultaneous-maximization panel (per-group
///   thresholds `β·OPT'_i`).
///
/// A non-positive threshold makes that group's term identically `1`
/// (the constraint is vacuous), matching the `τ → 0` limit of BSM.
#[derive(Clone, Debug)]
pub struct TruncatedMean {
    /// Per-group `1/(m_i · t_i)` scaling, or `None` when the term is
    /// saturated by definition (`t_i ≤ 0`).
    scale: Vec<Option<f64>>,
    inv_c: f64,
}

impl TruncatedMean {
    /// Uniform threshold `t` across all groups of the given sizes.
    pub fn uniform(sizes: &[usize], t: f64) -> Self {
        Self::per_group(sizes, &vec![t; sizes.len()])
    }

    /// Per-group thresholds `t_i`.
    pub fn per_group(sizes: &[usize], thresholds: &[f64]) -> Self {
        assert_eq!(sizes.len(), thresholds.len());
        assert!(!sizes.is_empty());
        let scale = sizes
            .iter()
            .zip(thresholds)
            .map(|(&m_i, &t)| {
                assert!(m_i > 0, "empty group");
                (t > 0.0).then(|| 1.0 / (m_i as f64 * t))
            })
            .collect();
        Self {
            scale,
            inv_c: 1.0 / sizes.len() as f64,
        }
    }

    #[inline]
    fn term(scale: Option<f64>, sum: f64) -> f64 {
        match scale {
            Some(w) => (sum * w).min(1.0),
            None => 1.0,
        }
    }
}

impl Aggregate for TruncatedMean {
    fn value(&self, sums: &[f64]) -> f64 {
        self.scale
            .iter()
            .zip(sums)
            .map(|(&w, &s)| Self::term(w, s))
            .sum::<f64>()
            * self.inv_c
    }

    fn gain(&self, sums: &[f64], gains: &[f64]) -> f64 {
        let mut delta = 0.0;
        for ((&w, &s), &g) in self.scale.iter().zip(sums).zip(gains) {
            delta += Self::term(w, s + g) - Self::term(w, s);
        }
        delta * self.inv_c
    }

    fn saturation_value(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// BSM-Saturate's combined objective (Lemma 4.4 of the paper):
///
/// ```text
/// F'_α(S) = min{1, f(S) / (α·OPT'_f)} + (1/c) Σ_i min{1, f_i(S) / (τ·OPT'_g)}
/// ```
///
/// Monotone and submodular for any `α, τ, OPT'` as a sum of truncations;
/// saturates at `2`.
#[derive(Clone, Debug)]
pub struct BsmObjective {
    mean: MeanUtility,
    /// `1/(α·OPT'_f)`, or `None` when the utility term is vacuous.
    utility_scale: Option<f64>,
    fairness: TruncatedMean,
}

impl BsmObjective {
    /// Builds `F'_α` for `m` users with the given group sizes.
    ///
    /// `alpha_opt_f = α·OPT'_f` and `tau_opt_g = τ·OPT'_g` are passed
    /// pre-multiplied; non-positive values make the corresponding term
    /// vacuous (identically 1).
    pub fn new(m: usize, sizes: &[usize], alpha_opt_f: f64, tau_opt_g: f64) -> Self {
        Self {
            mean: MeanUtility::new(m),
            utility_scale: (alpha_opt_f > 0.0).then(|| 1.0 / alpha_opt_f),
            fairness: TruncatedMean::uniform(sizes, tau_opt_g),
        }
    }

    #[inline]
    fn utility_term(&self, mean_value: f64) -> f64 {
        match self.utility_scale {
            Some(w) => (mean_value * w).min(1.0),
            None => 1.0,
        }
    }
}

impl Aggregate for BsmObjective {
    fn value(&self, sums: &[f64]) -> f64 {
        self.utility_term(self.mean.value(sums)) + self.fairness.value(sums)
    }

    fn gain(&self, sums: &[f64], gains: &[f64]) -> f64 {
        let before = self.utility_term(self.mean.value(sums));
        let after = self.utility_term(self.mean.value(sums) + self.mean.gain(sums, gains));
        (after - before) + self.fairness.gain(sums, gains)
    }

    fn saturation_value(&self) -> Option<f64> {
        Some(2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUMS: [f64; 2] = [5.0, 2.0];
    const GAINS: [f64; 2] = [1.0, 3.0];

    fn check_gain_consistency(agg: &impl Aggregate, sums: &[f64], gains: &[f64]) {
        let after: Vec<f64> = sums.iter().zip(gains).map(|(s, g)| s + g).collect();
        let expected = agg.value(&after) - agg.value(sums);
        let got = agg.gain(sums, gains);
        assert!(
            (expected - got).abs() < 1e-12,
            "gain inconsistent: {got} vs {expected}"
        );
    }

    #[test]
    fn mean_utility_values() {
        let f = MeanUtility::new(10);
        assert!((f.value(&SUMS) - 0.7).abs() < 1e-12);
        check_gain_consistency(&f, &SUMS, &GAINS);
    }

    #[test]
    fn group_mean_values() {
        let f1 = GroupMeanUtility::new(0, 5);
        assert!((f1.value(&SUMS) - 1.0).abs() < 1e-12);
        let f2 = GroupMeanUtility::new(1, 4);
        assert!((f2.value(&SUMS) - 0.5).abs() < 1e-12);
        check_gain_consistency(&f1, &SUMS, &GAINS);
    }

    #[test]
    fn min_group_values() {
        let g = MinGroupUtility::new(&[5, 4]);
        assert!((g.value(&SUMS) - 0.5).abs() < 1e-12);
        check_gain_consistency(&g, &SUMS, &GAINS);
    }

    #[test]
    fn truncated_mean_saturates() {
        let t = TruncatedMean::uniform(&[5, 4], 0.6);
        // group means: 1.0 and 0.5; terms: min(1, 1/0.6)=1, min(1, 0.5/0.6)=5/6
        let expect = 0.5 * (1.0 + 0.5 / 0.6);
        assert!((t.value(&SUMS) - expect).abs() < 1e-12);
        assert_eq!(t.saturation_value(), Some(1.0));
        check_gain_consistency(&t, &SUMS, &GAINS);
    }

    #[test]
    fn truncated_mean_zero_threshold_is_vacuous() {
        let t = TruncatedMean::uniform(&[5, 4], 0.0);
        assert!((t.value(&[0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((t.gain(&[0.0, 0.0], &GAINS)).abs() < 1e-12);
    }

    #[test]
    fn truncated_mean_per_group_thresholds() {
        let t = TruncatedMean::per_group(&[5, 4], &[2.0, 0.25]);
        // terms: min(1, 1.0/2.0)=0.5, min(1, 0.5/0.25)=1
        assert!((t.value(&SUMS) - 0.75).abs() < 1e-12);
        check_gain_consistency(&t, &SUMS, &GAINS);
    }

    #[test]
    fn bsm_objective_combines_terms() {
        // m=9, f = 7/9; utility term min(1, (7/9)/0.5)=1.
        let obj = BsmObjective::new(9, &[5, 4], 0.5, 0.6);
        let fair = TruncatedMean::uniform(&[5, 4], 0.6);
        assert!((obj.value(&SUMS) - (1.0 + fair.value(&SUMS))).abs() < 1e-12);
        assert_eq!(obj.saturation_value(), Some(2.0));
        check_gain_consistency(&obj, &SUMS, &GAINS);
        // Unsaturated utility term.
        let obj2 = BsmObjective::new(9, &[5, 4], 2.0, 0.6);
        assert!((obj2.value(&SUMS) - ((7.0 / 9.0) / 2.0 + fair.value(&SUMS))).abs() < 1e-12);
        check_gain_consistency(&obj2, &SUMS, &GAINS);
    }

    #[test]
    fn bsm_objective_vacuous_terms() {
        let obj = BsmObjective::new(9, &[5, 4], 0.0, 0.0);
        assert!((obj.value(&[0.0, 0.0]) - 2.0).abs() < 1e-12);
    }
}
