//! The whole utility–fairness trade-off at a glance: sweep τ through
//! the solver registry, extract the Pareto frontier, and compare the
//! two BSM solvers by hypervolume.
//!
//! This is the decision-maker's view the paper's Figures 3/7 plot:
//! every achievable (f, g) pair for a facility-location deployment,
//! with the dominated τ settings filtered out. Each point is one
//! registry call; the frontier math comes from `pareto_filter` /
//! `hypervolume`.
//!
//! Run with: `cargo run --release --example tradeoff_frontier`

use fair_submod::core::prelude::*;
use fair_submod::datasets::{adult_like, seeds, AdultSize};

fn main() {
    let dataset = adult_like(AdultSize::SmallRace, seeds::FL + 2);
    let oracle = dataset.oracle();
    let registry = SolverRegistry::default();
    let k = 5;
    println!(
        "{}: {} users, {} facilities, {} race groups\n",
        dataset.name,
        dataset.num_users(),
        dataset.num_items(),
        dataset.groups.num_groups()
    );

    let taus: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    for solver in ["BSM-TSGreedy", "BSM-Saturate"] {
        let points: Vec<(f64, f64, f64)> = taus
            .iter()
            .map(|&tau| {
                let report = registry
                    .solve(solver, &oracle, &ScenarioParams::new(k, tau))
                    .expect("BSM solvers run on any grouped oracle");
                (tau, report.f, report.g)
            })
            .collect();
        let fg: Vec<(f64, f64)> = points.iter().map(|&(_, f, g)| (f, g)).collect();
        let on_frontier = pareto_filter(&fg);
        let frontier: Vec<(f64, f64)> = fg
            .iter()
            .zip(&on_frontier)
            .filter(|(_, &on)| on)
            .map(|(&p, _)| p)
            .collect();
        println!("{solver}: hypervolume = {:.4}", hypervolume(&frontier));
        println!("{:>5}  {:>8}  {:>8}  frontier", "tau", "f(S)", "g(S)");
        for ((tau, f, g), on) in points.iter().zip(&on_frontier) {
            println!(
                "{tau:>5.2}  {f:>8.4}  {g:>8.4}  {}",
                if *on { "*" } else { "" }
            );
        }
        println!();
    }
    println!("* = non-dominated point. A higher hypervolume means the");
    println!("solver offers strictly better joint utility/fairness options.");
}
