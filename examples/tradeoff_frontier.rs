//! The whole utility–fairness trade-off at a glance: sweep τ, extract
//! the Pareto frontier, and compare the two BSM solvers by hypervolume.
//!
//! This is the decision-maker's view the paper's Figures 3/7 plot: every
//! achievable (f, g) pair for a facility-location deployment, with the
//! dominated τ settings filtered out.
//!
//! Run with: `cargo run --release --example tradeoff_frontier`

use fair_submod::core::prelude::*;
use fair_submod::datasets::{adult_like, seeds, AdultSize};

fn main() {
    let dataset = adult_like(AdultSize::SmallRace, seeds::FL + 2);
    let oracle = dataset.oracle();
    let k = 5;
    println!(
        "{}: {} users, {} facilities, {} race groups\n",
        dataset.name,
        dataset.num_users(),
        dataset.num_items(),
        dataset.groups.num_groups()
    );

    for solver in [FrontierSolver::TsGreedy, FrontierSolver::BsmSaturate] {
        let cfg = FrontierConfig {
            k,
            taus: (0..=10).map(|i| i as f64 / 10.0).collect(),
            solver,
        };
        let frontier = pareto_frontier(&oracle, &cfg);
        println!("{solver:?}: hypervolume = {:.4}", frontier.hypervolume);
        println!("{:>5}  {:>8}  {:>8}  frontier", "tau", "f(S)", "g(S)");
        for p in &frontier.points {
            println!(
                "{:>5.2}  {:>8.4}  {:>8.4}  {}",
                p.tau,
                p.f,
                p.g,
                if p.on_frontier { "*" } else { "" }
            );
        }
        println!();
    }
    println!("* = non-dominated point. A higher hypervolume means the");
    println!("solver offers strictly better joint utility/fairness options.");
}
