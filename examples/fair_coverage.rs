//! Fair maximum coverage on a synthetic social graph.
//!
//! Scenario from the paper's introduction: pick `k` "information hub"
//! nodes whose neighborhoods cover as many users as possible, while
//! guaranteeing every demographic group at least a τ-fraction of the
//! best achievable minimum coverage. The graph is a stochastic block
//! model with a 20%/80% minority/majority split — exactly the paper's
//! RAND dataset — so the unconstrained optimum systematically
//! under-serves the minority block. All solvers run through the
//! registry boundary.
//!
//! Run with: `cargo run --release --example fair_coverage`

use fair_submod::core::metrics::price_of_fairness;
use fair_submod::core::prelude::*;
use fair_submod::datasets::{rand_mc, seeds};

fn main() {
    let dataset = rand_mc(2, 500, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    let registry = SolverRegistry::default();
    let k = 5;
    println!(
        "{}: {} nodes, {} edges, groups {:?}\n",
        dataset.name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.groups.sizes()
    );

    let base = registry
        .solve("Greedy", &oracle, &ScenarioParams::new(k, 0.0))
        .expect("greedy runs everywhere");
    println!(
        "Unconstrained greedy: f = {:.4}, g = {:.4} (per-group means: {:?})",
        base.f,
        base.g,
        base.group_utilities
            .iter()
            .map(|x| (x * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    println!(
        "\n{:>4}  {:>8}  {:>8}  {:>8}  {:>10}",
        "tau", "f(S)", "g(S)", "PoF", "fell_back"
    );
    for tau in [0.2, 0.4, 0.6, 0.8, 0.95] {
        let out = registry
            .solve("BSM-Saturate", &oracle, &ScenarioParams::new(k, tau))
            .expect("bsm saturate runs everywhere");
        println!(
            "{tau:>4.2}  {:>8.4}  {:>8.4}  {:>8.4}  {:>10}",
            out.f,
            out.g,
            price_of_fairness(base.f, out.f),
            out.fell_back
        );
    }
    println!("\nPoF = price of fairness: relative utility given up versus the");
    println!("fairness-unaware greedy solution.");
}
