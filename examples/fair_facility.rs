//! Fair facility location: service-point placement with group fairness.
//!
//! The paper's FL motivation: deploy `k` service points so citizens are
//! close to one, ensuring each neighborhood group receives comparable
//! average benefit. Users/facilities are the paper's RAND FL dataset
//! (isotropic Gaussian blobs in R^5, RBF benefits, 15%/85% groups);
//! compares the whole suite at one grid point — one registry call per
//! solver, no per-algorithm config code — and sweeps τ for the exact
//! optimum.
//!
//! Run with: `cargo run --release --example fair_facility`

use fair_submod::core::prelude::*;
use fair_submod::datasets::{rand_fl, seeds};

fn main() {
    let dataset = rand_fl(2, seeds::FL);
    let oracle = dataset.oracle();
    let registry = SolverRegistry::default();
    let k = 5;
    let params = ScenarioParams::new(k, 0.8);
    println!(
        "{}: {} users / {} candidate facilities in R^{}\n",
        dataset.name,
        dataset.num_users(),
        dataset.num_items(),
        dataset.dim()
    );

    println!("{:>14}  {:>8}  {:>8}  facilities", "solver", "f(S)", "g(S)");
    for name in ["Greedy", "Saturate", "SMSC", "BSM-TSGreedy", "BSM-Saturate"] {
        let report = registry
            .solve(name, &oracle, &params)
            .expect("paper solvers run on c = 2");
        println!(
            "{name:>14}  {:>8.4}  {:>8.4}  {:?}",
            report.f, report.g, report.items
        );
    }

    println!("\nExact trade-off curve (BSM-Optimal, branch-and-bound):");
    println!("{:>5}  {:>8}  {:>8}", "tau", "f*", "g*");
    for tau in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let opt = registry
            .solve("BSM-Optimal", &oracle, &ScenarioParams::new(k, tau))
            .expect("n = 100 is within the exact caps");
        let complete = opt
            .notes
            .iter()
            .any(|(label, x)| label == "complete" && *x == 1.0);
        println!(
            "{tau:>5.2}  {:>8.4}  {:>8.4}{}",
            opt.f,
            opt.g,
            if complete { "" } else { "  (node budget hit)" }
        );
    }
}
