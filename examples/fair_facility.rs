//! Fair facility location: service-point placement with group fairness.
//!
//! The paper's FL motivation: deploy `k` service points so citizens are
//! close to one, ensuring each neighborhood group receives comparable
//! average benefit. Users/facilities are the paper's RAND FL dataset
//! (isotropic Gaussian blobs in R^5, RBF benefits, 15%/85% groups);
//! compares the whole suite at one grid point and sweeps τ for the
//! exact optimum.
//!
//! Run with: `cargo run --release --example fair_facility`

use fair_submod::core::metrics::evaluate;
use fair_submod::core::prelude::*;
use fair_submod::datasets::{rand_fl, seeds};

fn main() {
    let dataset = rand_fl(2, seeds::FL);
    let oracle = dataset.oracle();
    let k = 5;
    let tau = 0.8;
    println!(
        "{}: {} users / {} candidate facilities in R^{}\n",
        dataset.name,
        dataset.num_users(),
        dataset.num_items(),
        dataset.dim()
    );

    let f = MeanUtility::new(oracle.num_users());
    let algos: Vec<(&str, Vec<ItemId>)> = vec![
        ("Greedy", greedy(&oracle, &f, &GreedyConfig::lazy(k)).items),
        ("Saturate", saturate(&oracle, &SaturateConfig::new(k)).items),
        ("SMSC", smsc(&oracle, &SmscConfig::new(k)).items),
        (
            "BSM-TSGreedy",
            bsm_tsgreedy(&oracle, &TsGreedyConfig::new(k, tau)).items,
        ),
        (
            "BSM-Saturate",
            bsm_saturate(&oracle, &BsmSaturateConfig::new(k, tau)).items,
        ),
    ];
    println!(
        "{:>14}  {:>8}  {:>8}  facilities",
        "algorithm", "f(S)", "g(S)"
    );
    for (name, items) in &algos {
        let e = evaluate(&oracle, items);
        println!("{name:>14}  {:>8.4}  {:>8.4}  {:?}", e.f, e.g, items);
    }

    println!("\nExact trade-off curve (BSM-Optimal, branch-and-bound):");
    println!("{:>5}  {:>8}  {:>8}", "tau", "f*", "g*");
    for tau in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let opt = branch_and_bound_bsm(&oracle, &ExactConfig::new(k, tau));
        println!(
            "{tau:>5.2}  {:>8.4}  {:>8.4}{}",
            opt.eval.f,
            opt.eval.g,
            if opt.complete {
                ""
            } else {
                "  (node budget hit)"
            }
        );
    }
}
