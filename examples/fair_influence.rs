//! Fair influence maximization: seed selection balancing information
//! access across groups.
//!
//! The paper's IM motivation: a campaign picks `k` seed users in a
//! social network; without a fairness constraint, minority groups can
//! be left out of the spread ("information inequality"). This example
//! selects seeds on a group-stratified RIS oracle — through the solver
//! registry, like every other substrate — and reports the final spread
//! with independent Monte-Carlo simulation, comparing classic greedy IM
//! against BSM at τ = 0.8.
//!
//! Run with: `cargo run --release --example fair_influence`

use fair_submod::core::prelude::*;
use fair_submod::datasets::{rand_mc, seeds};
use fair_submod::influence::{monte_carlo_evaluate, DiffusionModel};

fn main() {
    let dataset = rand_mc(2, 100, seeds::RAND + 2);
    let model = DiffusionModel::ic(0.1);
    let registry = SolverRegistry::default();
    let k = 5;
    println!(
        "{} under IC(p=0.1): {} nodes, {} edges\n",
        dataset.name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges()
    );

    // Selection happens on the RIS estimator…
    let oracle = dataset.ris_oracle(model, 20_000, 7);
    let im_greedy = registry
        .solve("Greedy", &oracle, &ScenarioParams::new(k, 0.0))
        .expect("greedy runs everywhere");
    let fair = registry
        .solve("BSM-Saturate", &oracle, &ScenarioParams::new(k, 0.8))
        .expect("bsm saturate runs everywhere");

    // …but reported numbers come from 10,000 forward simulations, as in
    // the paper.
    let runs = 10_000;
    let base = monte_carlo_evaluate(
        &dataset.graph,
        model,
        &dataset.groups,
        &im_greedy.items,
        runs,
        99,
    );
    let ours = monte_carlo_evaluate(
        &dataset.graph,
        model,
        &dataset.groups,
        &fair.items,
        runs,
        99,
    );

    println!("Classic IM greedy seeds {:?}", im_greedy.items);
    println!(
        "  spread f = {:.4}, worst-group g = {:.4}, per group {:?}",
        base.f,
        base.g,
        round3(&base.group_means)
    );
    println!("BSM-Saturate (tau=0.8) seeds {:?}", fair.items);
    println!(
        "  spread f = {:.4}, worst-group g = {:.4}, per group {:?}",
        ours.f,
        ours.g,
        round3(&ours.group_means)
    );
    println!(
        "\nFairness gain: +{:.1}% worst-group spread at {:.1}% utility cost",
        100.0 * (ours.g - base.g) / base.g.max(1e-9),
        100.0 * (base.f - ours.f) / base.f.max(1e-9)
    );
}

fn round3(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
