//! Quickstart: the paper's running example (Figure 1, Examples 3.1–4.6)
//! driven entirely through the solver registry.
//!
//! Builds the 4-item / 12-user maximum-coverage instance, then walks
//! the algorithm suite at several balance factors τ — every solver runs
//! behind the same `SolverRegistry::solve(name, system, params)`
//! boundary, so there is no per-algorithm setup code at all.
//!
//! Run with: `cargo run --example quickstart`

use fair_submod::core::prelude::*;
use fair_submod::core::toy;

fn main() {
    let system = toy::figure1();
    let registry = SolverRegistry::default();
    println!("Figure 1 instance: 4 items, 12 users in 2 groups (9 + 3)");
    println!("registered solvers: {:?}\n", registry.names());

    // Anchors: utility-only greedy and fairness-only Saturate.
    for name in ["Greedy", "Saturate"] {
        let report = registry
            .solve(name, &system, &ScenarioParams::new(2, 0.0))
            .expect("figure-1 anchors always run");
        println!(
            "{name:>8}: S = {:?}  f = {:.3}  g = {:.3}",
            report.items, report.f, report.g
        );
    }

    println!("\nBSM: maximize f subject to g >= tau * OPT'_g");
    println!(
        "{:>5} | {:^28} | {:^28}",
        "tau", "BSM-TSGreedy", "BSM-Saturate"
    );
    for tau in [0.0, 0.2, 0.5, 0.8, 1.0] {
        let params = ScenarioParams::new(2, tau);
        let ts = registry
            .solve("BSM-TSGreedy", &system, &params)
            .expect("ts greedy runs");
        let bs = registry
            .solve("BSM-Saturate", &system, &params)
            .expect("bsm saturate runs");
        println!(
            "{tau:>5.1} | S={:?} f={:.2} g={:.2} | S={:?} f={:.2} g={:.2}",
            ts.items, ts.f, ts.g, bs.items, bs.f, bs.g
        );
    }

    // The exact optimum for reference (tiny instance).
    println!("\nExact BSM-Optimal for comparison:");
    for tau in [0.2, 0.8] {
        let opt = registry
            .solve("BSM-Optimal", &system, &ScenarioParams::new(2, tau))
            .expect("figure 1 is far below the exact caps");
        println!(
            "  tau={tau:.1}: S = {:?}  f = {:.3}  g = {:.3}  (OPT_g = {:.3})",
            opt.items, opt.f, opt.g, opt.opt_g_estimate
        );
    }

    // Capability gaps come back as typed errors, not panics: SMSC on a
    // 3-group instance is rejected cleanly.
    let three_groups = toy::random_coverage(10, 30, 3, 0.2, 1);
    let err = registry
        .solve("SMSC", &three_groups, &ScenarioParams::new(2, 0.5))
        .unwrap_err();
    println!("\nSMSC on c=3 groups: {err}");
}
