//! Quickstart: the paper's running example (Figure 1, Examples 3.1–4.6).
//!
//! Builds the 4-item / 12-user maximum-coverage instance, then walks the
//! whole algorithm suite at several balance factors τ, printing how the
//! utility–fairness trade-off moves.
//!
//! Run with: `cargo run --example quickstart`

use fair_submod::core::metrics::evaluate;
use fair_submod::core::prelude::*;
use fair_submod::core::toy;

fn main() {
    let system = toy::figure1();
    println!("Figure 1 instance: 4 items, 12 users in 2 groups (9 + 3)\n");

    // Fairness-unaware anchor: classic greedy on f.
    let f = MeanUtility::new(system.num_users());
    let greedy_run = greedy(&system, &f, &GreedyConfig::lazy(2));
    let greedy_eval = evaluate(&system, &greedy_run.items);
    println!(
        "Greedy (utility only):    S = {:?}  f = {:.3}  g = {:.3}",
        greedy_run.items, greedy_eval.f, greedy_eval.g
    );

    // Fairness-only anchor: Saturate on g.
    let sat = saturate(&system, &SaturateConfig::new(2));
    let sat_eval = evaluate(&system, &sat.items);
    println!(
        "Saturate (fairness only): S = {:?}  f = {:.3}  g = {:.3}  (OPT'_g = {:.3})\n",
        sat.items, sat_eval.f, sat_eval.g, sat.opt_g_estimate
    );

    println!("BSM: maximize f subject to g >= tau * OPT_g");
    println!(
        "{:>5} | {:^24} | {:^24}",
        "tau", "BSM-TSGreedy", "BSM-Saturate"
    );
    for tau in [0.0, 0.2, 0.5, 0.8, 1.0] {
        let ts = bsm_tsgreedy(&system, &TsGreedyConfig::new(2, tau));
        let bs = bsm_saturate(&system, &BsmSaturateConfig::new(2, tau));
        println!(
            "{tau:>5.1} | S={:?} f={:.2} g={:.2} | S={:?} f={:.2} g={:.2}",
            ts.items, ts.eval.f, ts.eval.g, bs.items, bs.eval.f, bs.eval.g
        );
    }

    // The exact optimum for reference (tiny instance).
    println!("\nExact BSM-Optimal for comparison:");
    for tau in [0.2, 0.8] {
        let opt = branch_and_bound_bsm(&system, &ExactConfig::new(2, tau));
        println!(
            "  tau={tau:.1}: S = {:?}  f = {:.3}  g = {:.3}  (OPT_g = {:.3})",
            opt.items, opt.eval.f, opt.eval.g, opt.opt_g
        );
    }
}
