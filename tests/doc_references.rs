//! Doc-reference integrity: every `DESIGN.md §N` citation in rustdoc
//! (and the top-level docs) must point at a section that exists, and
//! every `docs/*.md` path cited anywhere must be a real file.
//!
//! Rustdoc has cited DESIGN.md sections since the early PRs; the file
//! itself only landed later, and nothing stopped a section from being
//! renumbered out from under its citations. This test closes that gap
//! the same way `-D warnings` closes intra-doc links: referencing a
//! missing section or document fails CI.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Recursively collects files under `dir` with one of `extensions`,
/// skipping build output.
fn collect_files(dir: &Path, extensions: &[&str], out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                collect_files(&path, extensions, out);
            }
        } else if extensions
            .iter()
            .any(|ext| name.ends_with(&format!(".{ext}")))
        {
            out.push(path);
        }
    }
}

/// The scanned corpus: all workspace Rust sources plus the top-level
/// documentation (ISSUE.md and friends are process files, not docs,
/// and are deliberately excluded).
fn corpus() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples", "docs"] {
        collect_files(&root.join(dir), &["rs", "md"], &mut files);
    }
    for name in ["README.md", "ARCHITECTURE.md", "DESIGN.md"] {
        let path = root.join(name);
        if path.exists() {
            files.push(path);
        }
    }
    files.sort();
    files
}

/// Every `§N` number following the given needle in `text`.
fn cited_sections(text: &str, needle: &str) -> Vec<u32> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(needle) {
        rest = &rest[pos + needle.len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(n) = digits.parse() {
            out.push(n);
        }
    }
    out
}

/// Every `docs/<path>.md` reference in `text`.
fn cited_docs(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("docs/") {
        let tail = &rest[pos..];
        let path: String = tail
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '/' | '_' | '-' | '.'))
            .collect();
        if path.ends_with(".md") {
            out.push(path.clone());
        }
        rest = &rest[pos + "docs/".len()..];
    }
    out
}

#[test]
fn design_md_exists_and_is_cited() {
    let design = repo_root().join("DESIGN.md");
    assert!(design.exists(), "DESIGN.md missing at the repo root");
    let text = std::fs::read_to_string(&design).unwrap();
    assert!(
        text.contains("## §4"),
        "DESIGN.md must keep the dataset-substitution section rustdoc cites"
    );
}

#[test]
fn every_cited_design_section_exists() {
    let design = std::fs::read_to_string(repo_root().join("DESIGN.md")).unwrap();
    let defined: BTreeSet<u32> = cited_sections(&design, "## §").into_iter().collect();
    assert!(!defined.is_empty(), "DESIGN.md defines no `## §N` sections");

    let mut checked = 0usize;
    for path in corpus() {
        if path.ends_with("DESIGN.md") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        for section in cited_sections(&text, "DESIGN.md §") {
            checked += 1;
            assert!(
                defined.contains(&section),
                "{} cites DESIGN.md §{section}, but DESIGN.md has no `## §{section}` heading \
                 (defined: {defined:?})",
                path.display()
            );
        }
    }
    assert!(
        checked >= 4,
        "expected the known DESIGN.md §N citations in rustdoc to be scanned (found {checked})"
    );
}

#[test]
fn every_cited_docs_path_exists() {
    let root = repo_root();
    let mut checked = 0usize;
    for path in corpus() {
        let text = std::fs::read_to_string(&path).unwrap();
        for doc in cited_docs(&text) {
            // Skip glob-style mentions ("docs/*.md") in prose.
            if doc.contains('*') {
                continue;
            }
            checked += 1;
            assert!(
                root.join(&doc).exists(),
                "{} references {doc}, which does not exist",
                path.display()
            );
        }
    }
    assert!(
        checked >= 1,
        "expected at least the README's docs/paper_map.md reference to be scanned"
    );
}

#[test]
fn top_level_docs_cross_reference_each_other() {
    // The documentation layer is a graph: README links the paper map
    // and spec schema; DESIGN and ARCHITECTURE reference each other.
    let read = |name: &str| std::fs::read_to_string(repo_root().join(name)).unwrap();
    let readme = read("README.md");
    assert!(readme.contains("docs/paper_map.md"));
    assert!(readme.contains("crates/bench/specs/README.md"));
    assert!(readme.contains("DESIGN.md"));
    let design = read("DESIGN.md");
    assert!(design.contains("ARCHITECTURE.md"));
    let architecture = read("ARCHITECTURE.md");
    assert!(architecture.contains("DESIGN.md §7"));
    // And the spec schema doc exists next to the specs it describes.
    assert!(repo_root().join("crates/bench/specs/README.md").exists());
}
