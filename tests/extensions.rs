//! Integration tests for the extension APIs (streaming, distributed,
//! MWU, knapsack, non-monotone, Pareto frontier, curvature, contract
//! validation) on realistic dataset-crate instances — the features that
//! go beyond the paper's core algorithms but stay within its related /
//! future work.

use fair_submod::core::curvature::total_curvature;
use fair_submod::core::metrics::evaluate;
use fair_submod::core::prelude::*;
use fair_submod::core::validate::{check_contract, ValidationConfig};
use fair_submod::datasets::{rand_fl, rand_mc, seeds};
use fair_submod::influence::DiffusionModel;

#[test]
fn all_dataset_oracles_satisfy_the_contract() {
    let cfg = ValidationConfig {
        trials: 4,
        max_depth: 4,
        ..Default::default()
    };
    let mc = rand_mc(2, 80, seeds::RAND).coverage_oracle();
    check_contract(&mc, &cfg).unwrap();

    let fl = rand_fl(2, seeds::FL).oracle();
    check_contract(&fl, &cfg).unwrap();

    let im = rand_mc(2, 80, seeds::RAND).ris_oracle(DiffusionModel::ic(0.1), 2_000, 3);
    check_contract(&im, &cfg).unwrap();
}

#[test]
fn sieve_streaming_works_on_dataset_scale() {
    let dataset = rand_mc(2, 500, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    let f = MeanUtility::new(500);
    let sieve = sieve_streaming(&oracle, &f, &SieveConfig::new(5)).expect("valid config");
    let central = greedy(&oracle, &f, &GreedyConfig::lazy(5));
    assert!(sieve.value >= 0.45 * central.value);
    // Memory bound: number of parallel candidates is O(log(k)/ε).
    assert!(sieve.candidates < 400, "{} candidates", sieve.candidates);
}

#[test]
fn greedi_scales_out_the_utility_stage() {
    let dataset = rand_mc(4, 500, seeds::RAND + 1);
    let oracle = dataset.coverage_oracle();
    let f = MeanUtility::new(500);
    let central = greedy(&oracle, &f, &GreedyConfig::lazy(8));
    let mut cfg = GreediConfig::new(8);
    cfg.shards = 8;
    let dist = greedi(&oracle, &f, &cfg).expect("valid config");
    assert!(dist.value >= 0.8 * central.value);
}

#[test]
fn mwu_and_saturate_agree_on_opt_g_scale() {
    let dataset = rand_mc(2, 500, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    let sat = saturate(&oracle, &SaturateConfig::new(5).approximate_only());
    let mwu = mwu_robust(&oracle, &MwuConfig::new(5));
    let ratio = mwu.opt_g_estimate / sat.opt_g_estimate.max(1e-12);
    assert!(
        (0.5..=2.0).contains(&ratio),
        "MWU {} vs Saturate {}",
        mwu.opt_g_estimate,
        sat.opt_g_estimate
    );
}

#[test]
fn knapsack_greedy_with_distance_costs_on_fl() {
    // Facility opening cost proportional to distance from the city
    // center: remote facilities must pay for themselves.
    let dataset = rand_fl(2, seeds::FL);
    let oracle = dataset.oracle();
    let f = MeanUtility::new(oracle.num_users());
    let costs: Vec<f64> = (0..dataset.num_items())
        .map(|i| {
            let p = dataset.items.point(i);
            1.0 + p.iter().map(|x| x * x).sum::<f64>().sqrt()
        })
        .collect();
    let budget = 8.0;
    let out = knapsack_greedy(
        &oracle,
        &f,
        &KnapsackConfig {
            costs: costs.clone(),
            budget,
        },
    );
    assert!(out.cost <= budget + 1e-9);
    assert!(out.value > 0.0);
    let recomputed = evaluate(&oracle, &out.items).f;
    assert!((recomputed - out.value).abs() < 1e-9);
}

#[test]
fn pareto_frontier_prefers_bsm_saturate_on_mc() {
    // The paper's headline: BSM-Saturate offers better trade-offs. On
    // the c=4 RAND instance its frontier hypervolume must be at least
    // competitive with TSGreedy's.
    let dataset = rand_mc(4, 500, seeds::RAND + 1);
    let oracle = dataset.coverage_oracle();
    let taus: Vec<f64> = (0..=5).map(|i| i as f64 / 5.0).collect();
    let hv = |solver| {
        pareto_frontier(
            &oracle,
            &FrontierConfig {
                k: 5,
                taus: taus.clone(),
                solver,
            },
        )
        .hypervolume
    };
    let ts = hv(FrontierSolver::TsGreedy);
    let bs = hv(FrontierSolver::BsmSaturate);
    assert!(
        bs + 1e-9 >= 0.9 * ts,
        "BSM-Saturate hypervolume {bs} far below TSGreedy {ts}"
    );
}

#[test]
fn curvature_explains_facility_location_ease() {
    // FL with RBF benefits has κ < 1 (every facility retains marginal
    // value even added last), so greedy's curvature bound beats 1−1/e;
    // MC dominating sets are near κ = 1.
    let fl = rand_fl(2, seeds::FL).oracle();
    let c_fl = total_curvature(&fl, &MeanUtility::new(100));
    assert!(c_fl.kappa < 1.0 - 1e-6, "FL κ = {}", c_fl.kappa);
    assert!(c_fl.greedy_factor > 1.0 - 1.0 / std::f64::consts::E);

    let mc = rand_mc(2, 150, seeds::RAND).coverage_oracle();
    let c_mc = total_curvature(&mc, &MeanUtility::new(150));
    assert!(c_mc.kappa > c_fl.kappa - 1e-9, "MC should be more curved");
}

#[test]
fn random_greedy_handles_penalized_im_style_instance() {
    // Utility minus per-item cost on a coverage instance: non-monotone.
    let dataset = rand_mc(2, 100, seeds::RAND + 2);
    let oracle = dataset.coverage_oracle();
    let costs = vec![2.0; 100]; // each item costs 2 user-equivalents
    let penalized = PenalizedSystem::new(oracle, costs);
    let f = MeanUtility::new(100);
    let out = random_greedy(&penalized, &f, &RandomGreedyConfig { k: 10, seed: 11 });
    // The solver must stop before forcing net-negative additions.
    assert!(out.value >= 0.0, "value {}", out.value);
    assert!(out.items.len() <= 10);
}
