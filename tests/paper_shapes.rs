//! Shape tests: the qualitative observations of the paper's evaluation
//! (Section 5) asserted as invariants on the synthetic RAND datasets.
//! These are the properties EXPERIMENTS.md reports; encoding them as
//! tests keeps the reproduction honest under refactoring.

use fair_submod::core::metrics::evaluate;
use fair_submod::core::prelude::*;
use fair_submod::datasets::{rand_fl, rand_mc, seeds};

/// Fig. 3 / Fig. 7 shape: as τ grows, `f` (weakly) falls and `g`
/// (weakly) rises for both BSM algorithms, up to small algorithmic
/// noise.
#[test]
fn tradeoff_moves_monotonically_with_tau() {
    let dataset = rand_mc(2, 500, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    let k = 5;
    let lo = 0.1;
    let hi = 0.9;

    for algo in ["ts", "sat"] {
        let run = |tau: f64| match algo {
            "ts" => {
                let out = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(k, tau));
                (out.eval.f, out.eval.g)
            }
            _ => {
                let out = bsm_saturate(&oracle, &BsmSaturateConfig::new(k, tau));
                (out.eval.f, out.eval.g)
            }
        };
        let (f_lo, g_lo) = run(lo);
        let (f_hi, g_hi) = run(hi);
        assert!(
            f_lo + 1e-9 >= f_hi,
            "{algo}: f should not increase with tau ({f_lo} vs {f_hi})"
        );
        assert!(
            g_hi + 1e-9 >= g_lo,
            "{algo}: g should not decrease with tau ({g_lo} vs {g_hi})"
        );
    }
}

/// Fig. 3 commentary: at small τ, BSM solutions approach the
/// fairness-unaware greedy's `f`; at large τ they approach Saturate's
/// `g`.
#[test]
fn bsm_interpolates_between_greedy_and_saturate() {
    let dataset = rand_mc(2, 500, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    let k = 5;
    let f_agg = MeanUtility::new(oracle.num_users());
    let greedy_f = greedy(&oracle, &f_agg, &GreedyConfig::lazy(k)).value;
    let sat = saturate(&oracle, &SaturateConfig::new(k).approximate_only());

    let low_tau = bsm_saturate(&oracle, &BsmSaturateConfig::new(k, 0.05));
    assert!(
        low_tau.eval.f >= 0.9 * greedy_f,
        "low tau should recover ≥90% of greedy f ({} vs {greedy_f})",
        low_tau.eval.f
    );

    let high_tau = bsm_saturate(&oracle, &BsmSaturateConfig::new(k, 0.95));
    assert!(
        high_tau.eval.g >= 0.6 * sat.opt_g_estimate,
        "high tau should approach Saturate's g ({} vs {})",
        high_tau.eval.g,
        sat.opt_g_estimate
    );
}

/// Fig. 3/5/7 commentary: BSM-Saturate's `f` is at least comparable to
/// BSM-TSGreedy's across τ on MC (the paper reports it winning almost
/// always; we assert no catastrophic regression).
#[test]
fn bsm_saturate_is_competitive_with_tsgreedy_on_f() {
    let dataset = rand_mc(4, 500, seeds::RAND + 1);
    let oracle = dataset.coverage_oracle();
    for tau in [0.3, 0.6, 0.9] {
        let ts = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(5, tau));
        let bs = bsm_saturate(&oracle, &BsmSaturateConfig::new(5, tau));
        assert!(
            bs.eval.f + 1e-9 >= 0.9 * ts.eval.f,
            "tau {tau}: BSM-Saturate f {} far below TSGreedy {}",
            bs.eval.f,
            ts.eval.f
        );
    }
}

/// Greedy is the best-f anchor and Saturate the best-g anchor among the
/// compared suite (by construction; the figures rely on it).
#[test]
fn anchors_dominate_their_own_objectives() {
    let dataset = rand_fl(2, seeds::FL);
    let oracle = dataset.oracle();
    let k = 5;
    let f_agg = MeanUtility::new(oracle.num_users());
    let greedy_run = greedy(&oracle, &f_agg, &GreedyConfig::lazy(k));
    let greedy_eval = evaluate(&oracle, &greedy_run.items);
    let sat = saturate(&oracle, &SaturateConfig::new(k).approximate_only());
    let sat_eval = evaluate(&oracle, &sat.items);

    for tau in [0.2, 0.8] {
        for out in [
            bsm_tsgreedy(&oracle, &TsGreedyConfig::new(k, tau)),
            bsm_saturate(&oracle, &BsmSaturateConfig::new(k, tau)),
        ] {
            assert!(out.eval.f <= greedy_eval.f + 1e-9);
            // Saturate's g is near-best; allow small slack for the
            // greedy-cover heuristic.
            assert!(out.eval.g <= sat_eval.g.max(greedy_eval.g) + 0.1);
        }
    }
}

/// The ε-relaxed weak guarantee of Lemma 4.4 holds on exact oracles.
#[test]
fn bsm_saturate_lemma44_guarantee() {
    let dataset = rand_mc(4, 500, seeds::RAND + 1);
    let oracle = dataset.coverage_oracle();
    for tau in [0.2, 0.5, 0.8] {
        let cfg = BsmSaturateConfig::new(5, tau);
        let out = bsm_saturate(&oracle, &cfg);
        let floor = (1.0 - 2.0 * cfg.epsilon) * tau * out.opt_g_estimate;
        assert!(
            out.eval.g + 1e-9 >= floor,
            "tau {tau}: g {} < (1-2ε)τ·OPT'_g {}",
            out.eval.g,
            floor
        );
    }
}

/// Extensions coexist with the core suite: MWU's robust estimate is a
/// valid witnessed lower bound, sieve-streaming respects its guarantee
/// relative to greedy.
#[test]
fn extension_algorithms_are_consistent_on_rand() {
    let dataset = rand_mc(2, 500, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    let k = 5;

    let mwu = mwu_robust(&oracle, &MwuConfig::new(k));
    let achieved = evaluate(&oracle, &mwu.items).g;
    assert!((achieved - mwu.opt_g_estimate).abs() < 1e-9);

    let f_agg = MeanUtility::new(oracle.num_users());
    let greedy_run = greedy(&oracle, &f_agg, &GreedyConfig::lazy(k));
    let sieve = sieve_streaming(&oracle, &f_agg, &SieveConfig::new(k)).expect("valid config");
    assert!(sieve.value >= 0.4 * greedy_run.value);

    let knap = knapsack_greedy(
        &oracle,
        &f_agg,
        &KnapsackConfig::uniform(oracle.sets().num_sets(), k as f64),
    );
    assert!((knap.value - greedy_run.value).abs() < 1e-9);
}
