//! Property-based tests (proptest) for the core invariants:
//! monotonicity + submodularity of every oracle, consistency of the
//! composite aggregates, lazy ≡ naive greedy, the `(1 − 1/e)` bound
//! against brute force, and feasibility guarantees of the BSM schemes.

use proptest::prelude::*;

use fair_submod::core::aggregate::{
    Aggregate, BsmObjective, MeanUtility, MinGroupUtility, TruncatedMean,
};
use fair_submod::core::metrics::evaluate;
use fair_submod::core::prelude::*;
use fair_submod::core::system::{SolutionState, UtilitySystem};
use fair_submod::coverage::{CoverageOracle, SetSystem};
use fair_submod::facility::{BenefitMatrix, FacilityOracle};
use fair_submod::graphs::Groups;

/// Strategy: a random coverage instance (sets over m users, c groups).
fn coverage_instance() -> impl Strategy<Value = (CoverageOracle, usize)> {
    (2usize..6, 6usize..16, 2usize..4, any::<u64>()).prop_map(|(n, m, c, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let sets: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..m as u32).filter(|_| next() % 100 < 35).collect())
            .collect();
        let group_of: Vec<u32> = (0..m).map(|u| (u % c) as u32).collect();
        let oracle =
            CoverageOracle::new(SetSystem::new(sets, m), &Groups::from_assignment(group_of));
        (oracle, n)
    })
}

/// Strategy: a random facility instance.
fn facility_instance() -> impl Strategy<Value = (FacilityOracle, usize)> {
    (2usize..6, 3usize..10, 2usize..4, any::<u64>()).prop_map(|(n, m, c, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let b: Vec<f64> = (0..m * n).map(|_| next()).collect();
        let group_of: Vec<u32> = (0..m).map(|u| (u % c) as u32).collect();
        (
            FacilityOracle::new(BenefitMatrix::new(b, m, n), group_of),
            n,
        )
    })
}

/// Checks monotonicity and submodularity of `system` along a random
/// insertion order: gains are non-negative and only shrink as the
/// solution grows.
fn check_monotone_submodular<S: UtilitySystem>(system: &S, order: &[u32]) {
    let c = system.num_groups();
    let n = system.num_items();
    let mut state = SolutionState::new(system);
    let mut prev_gains: Vec<Vec<f64>> = Vec::new();
    let mut buf = vec![0.0; c];
    for v in 0..n as u32 {
        state.gains_into(v, &mut buf);
        assert!(buf.iter().all(|&x| x >= -1e-12), "negative gain");
        prev_gains.push(buf.clone());
    }
    for &v in order {
        if state.contains(v) {
            continue;
        }
        state.insert(v);
        for u in 0..n as u32 {
            state.gains_into(u, &mut buf);
            for gi in 0..c {
                assert!(
                    buf[gi] <= prev_gains[u as usize][gi] + 1e-9,
                    "gain grew after insertion: item {u}, group {gi}"
                );
            }
            prev_gains[u as usize] = buf.clone();
        }
    }
}

/// Checks monotonicity and submodularity through the **batch** path:
/// all gains are read via `gains_batch_into` matrices, which must be
/// non-negative, shrink as the solution grows, and agree bit-for-bit
/// with the per-item `group_gains` calls.
fn check_monotone_submodular_batch<S: UtilitySystem>(system: &S, order: &[u32]) {
    let c = system.num_groups();
    let n = system.num_items();
    let items: Vec<u32> = (0..n as u32).collect();
    let mut state = SolutionState::new(system);
    let mut prev = vec![0.0; n * c];
    let mut cur = vec![0.0; n * c];
    let mut row = vec![0.0; c];
    state.gains_batch_into(&items, &mut prev);
    for (j, &v) in items.iter().enumerate() {
        state.gains_into(v, &mut row);
        for g in 0..c {
            assert_eq!(
                prev[j * c + g].to_bits(),
                row[g].to_bits(),
                "batch row != per-item gain: item {v}, group {g}"
            );
        }
    }
    assert!(prev.iter().all(|&x| x >= -1e-12), "negative batch gain");
    for &v in order {
        if state.contains(v) {
            continue;
        }
        state.insert(v);
        state.gains_batch_into(&items, &mut cur);
        for (a, b) in cur.iter().zip(&prev) {
            assert!(*a <= *b + 1e-9, "batch gain grew after insertion");
        }
        std::mem::swap(&mut prev, &mut cur);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coverage_oracle_is_monotone_submodular((oracle, n) in coverage_instance(), seed in any::<u64>()) {
        let order: Vec<u32> = (0..n as u32).map(|i| (i.wrapping_add(seed as u32)) % n as u32).collect();
        check_monotone_submodular(&oracle, &order);
    }

    #[test]
    fn coverage_batch_path_is_monotone_submodular((oracle, n) in coverage_instance(), seed in any::<u64>()) {
        let order: Vec<u32> = (0..n as u32).map(|i| (i.wrapping_add(seed as u32)) % n as u32).collect();
        check_monotone_submodular_batch(&oracle, &order);
    }

    #[test]
    fn facility_batch_path_is_monotone_submodular((oracle, n) in facility_instance(), seed in any::<u64>()) {
        let order: Vec<u32> = (0..n as u32).map(|i| (i.wrapping_add(seed as u32)) % n as u32).collect();
        check_monotone_submodular_batch(&oracle, &order);
    }

    #[test]
    fn facility_oracle_is_monotone_submodular((oracle, n) in facility_instance(), seed in any::<u64>()) {
        let order: Vec<u32> = (0..n as u32).map(|i| (i.wrapping_add(seed as u32)) % n as u32).collect();
        check_monotone_submodular(&oracle, &order);
    }

    #[test]
    fn aggregates_are_consistent((oracle, _) in coverage_instance(), items in proptest::collection::vec(0u32..5, 0..4)) {
        let sizes = oracle.group_sizes().to_vec();
        let m = oracle.num_users();
        let mut state = SolutionState::new(&oracle);
        for v in items {
            if (v as usize) < oracle.num_items() {
                state.insert(v);
            }
        }
        let sums = state.group_sums().to_vec();
        let aggregates: Vec<Box<dyn Aggregate>> = vec![
            Box::new(MeanUtility::new(m)),
            Box::new(MinGroupUtility::new(&sizes)),
            Box::new(TruncatedMean::uniform(&sizes, 0.4)),
            Box::new(BsmObjective::new(m, &sizes, 0.3, 0.4)),
        ];
        // gain(sums, gains) == value(sums + gains) − value(sums).
        let gains: Vec<f64> = sums.iter().map(|&s| s * 0.5 + 0.25).collect();
        let after: Vec<f64> = sums.iter().zip(&gains).map(|(s, g)| s + g).collect();
        for agg in &aggregates {
            let direct = agg.value(&after) - agg.value(&sums);
            let via_gain = agg.gain(&sums, &gains);
            prop_assert!((direct - via_gain).abs() < 1e-9);
        }
    }

    #[test]
    fn lazy_greedy_equals_naive_greedy((oracle, _) in coverage_instance(), k in 1usize..6) {
        let f = MeanUtility::new(oracle.num_users());
        let naive = greedy(&oracle, &f, &GreedyConfig::naive(k));
        let lazy = greedy(&oracle, &f, &GreedyConfig::lazy(k));
        prop_assert_eq!(naive.items, lazy.items);
        prop_assert!((naive.value - lazy.value).abs() < 1e-12);
    }

    #[test]
    fn greedy_achieves_one_minus_inv_e((oracle, n) in coverage_instance(), k in 1usize..4) {
        prop_assume!(n >= k);
        let f = MeanUtility::new(oracle.num_users());
        let run = greedy(&oracle, &f, &GreedyConfig::lazy(k));
        let (_, opt) = brute_force_max(&oracle, &f, k);
        prop_assert!(run.value + 1e-9 >= (1.0 - (-1.0f64).exp()) * opt,
            "greedy {} < (1-1/e)·{}", run.value, opt);
    }

    #[test]
    fn tsgreedy_weakly_feasible_and_k_sized((oracle, n) in coverage_instance(), tau in 0.05f64..0.95) {
        let k = 3usize.min(n);
        let out = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(k, tau));
        prop_assert_eq!(out.items.len(), k);
        // Exact oracle ⇒ the weak constraint always holds.
        prop_assert!(out.eval.g + 1e-9 >= tau * out.opt_g_estimate,
            "g {} < tau·OPT'_g {}", out.eval.g, tau * out.opt_g_estimate);
    }

    #[test]
    fn bsm_saturate_respects_size_cap((oracle, n) in coverage_instance(), tau in 0.05f64..0.95) {
        let k = 3usize.min(n);
        let out = bsm_saturate(&oracle, &BsmSaturateConfig::new(k, tau));
        prop_assert!(out.items.len() <= k);
        let eval = evaluate(&oracle, &out.items);
        prop_assert!((eval.f - out.eval.f).abs() < 1e-12);
    }

    #[test]
    fn saturate_is_witnessed((oracle, n) in coverage_instance(), k in 1usize..5) {
        prop_assume!(n >= k);
        let sat = saturate(&oracle, &SaturateConfig::new(k).approximate_only());
        let achieved = evaluate(&oracle, &sat.items).g;
        prop_assert!((achieved - sat.opt_g_estimate).abs() < 1e-9);
    }
}
