//! Property-based tests (proptest) for the streaming edge-list loader
//! behind the sharded tier (`graphs::io`): chunked parsing at any chunk
//! size — including sizes that split every line across chunk boundaries
//! and leave a ragged final chunk — must agree byte for byte with the
//! whole-file reader, per-shard CSR slices must equal the rows the full
//! graph would hand out, and both paths must report identical typed
//! errors with identical line numbers.

use proptest::prelude::*;

use fair_submod::graphs::csr::NodeId;
use fair_submod::graphs::csr::SpillError;
use fair_submod::graphs::io::{
    read_edge_list, read_edge_list_chunked, read_shard_slices, write_edge_list,
};
use fair_submod::graphs::CsrSlice;

/// Strategy: a random edge-list document over `n` nodes — duplicate
/// edges, self-loops, blank lines, `#` comments, and an optional
/// missing trailing newline (a ragged last line) all appear.
fn edge_list_doc() -> impl Strategy<Value = (String, usize)> {
    (2usize..24, 0usize..50, any::<u64>(), any::<bool>()).prop_map(
        |(n, edges, seed, trailing_newline)| {
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut lines: Vec<String> = Vec::new();
            for _ in 0..edges {
                match next() % 10 {
                    0 => lines.push(String::new()),
                    1 => lines.push("# comment".to_string()),
                    // Self-loops and duplicates are produced naturally:
                    // endpoints are unconstrained and repeats are likely.
                    _ => lines.push(format!("{} {}", next() % n as u64, next() % n as u64)),
                }
            }
            let mut text = lines.join("\n");
            if trailing_newline && !text.is_empty() {
                text.push('\n');
            }
            (text, n)
        },
    )
}

/// The full out-adjacency of `graph`-like readers, as one comparable
/// value (Graph itself has no `PartialEq`; its row slicer does).
fn all_rows(graph: &fair_submod::graphs::Graph) -> CsrSlice {
    let nodes: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
    graph.slice_rows(&nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked parsing is chunk-size invariant and equals the
    /// whole-file reader, directed and undirected.
    #[test]
    fn chunked_reader_matches_whole_file(
        (text, n) in edge_list_doc(),
        chunk in 1usize..48,
        directed in any::<bool>(),
    ) {
        let whole = read_edge_list(text.as_bytes(), n, directed).unwrap();
        let chunked = read_edge_list_chunked(text.as_bytes(), n, directed, chunk).unwrap();
        prop_assert_eq!(whole.num_nodes(), chunked.num_nodes());
        prop_assert_eq!(whole.num_arcs(), chunked.num_arcs());
        prop_assert_eq!(whole.is_directed(), chunked.is_directed());
        prop_assert_eq!(all_rows(&whole), all_rows(&chunked));
    }

    /// Per-shard slices streamed from the bytes equal the rows the
    /// fully materialized graph hands out — for any owner assignment,
    /// including ones that leave shards empty.
    #[test]
    fn shard_slices_equal_full_graph_rows(
        (text, n) in edge_list_doc(),
        num_shards in 1usize..6,
        owner_seed in any::<u64>(),
        chunk in 1usize..48,
        directed in any::<bool>(),
    ) {
        let mut state = owner_seed | 1;
        let owner: Vec<u32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % num_shards as u64) as u32
            })
            .collect();
        let whole = read_edge_list(text.as_bytes(), n, directed).unwrap();
        let slices =
            read_shard_slices(text.as_bytes(), n, directed, &owner, num_shards, chunk).unwrap();
        prop_assert_eq!(slices.len(), num_shards);
        let mut total_nodes = 0usize;
        for (s, slice) in slices.iter().enumerate() {
            let members: Vec<NodeId> = (0..n as NodeId)
                .filter(|&v| owner[v as usize] == s as u32)
                .collect();
            total_nodes += members.len();
            prop_assert_eq!(slice, &whole.slice_rows(&members));
        }
        prop_assert_eq!(total_nodes, n);
    }

    /// A graph round-trips: write_edge_list → chunked reader → the
    /// same adjacency (the bench pipeline's on-disk format).
    #[test]
    fn written_graphs_round_trip_through_the_chunked_reader(
        (text, n) in edge_list_doc(),
        chunk in 1usize..48,
        directed in any::<bool>(),
    ) {
        let original = read_edge_list(text.as_bytes(), n, directed).unwrap();
        let mut bytes = Vec::new();
        write_edge_list(&original, &mut bytes).unwrap();
        let reread = read_edge_list_chunked(&bytes[..], n, directed, chunk).unwrap();
        prop_assert_eq!(all_rows(&original), all_rows(&reread));
    }

    /// Malformed documents fail identically on both paths: same error
    /// kind, same message, same 1-based line number — so switching the
    /// bench pipeline to streaming never changes its diagnostics.
    #[test]
    fn both_readers_report_identical_errors(
        (text, n) in edge_list_doc(),
        corrupt_kind in 0u8..3,
        line_seed in any::<u64>(),
        chunk in 1usize..48,
    ) {
        let corrupt = ["1 junk", "lonely", "999999 0"][corrupt_kind as usize];
        let mut lines: Vec<&str> = text.lines().collect();
        let at = if lines.is_empty() { 0 } else { line_seed as usize % (lines.len() + 1) };
        lines.insert(at, corrupt);
        let bad = lines.join("\n");
        let whole_err = read_edge_list(bad.as_bytes(), n, false).unwrap_err();
        let chunked_err = read_edge_list_chunked(bad.as_bytes(), n, false, chunk).unwrap_err();
        prop_assert_eq!(whole_err.kind(), chunked_err.kind());
        prop_assert_eq!(whole_err.to_string(), chunked_err.to_string());
        let owner = vec![0u32; n];
        let shard_err = read_shard_slices(bad.as_bytes(), n, false, &owner, 1, chunk).unwrap_err();
        prop_assert_eq!(whole_err.to_string(), shard_err.to_string());
    }
}

/// Unique scratch dir per proptest case: cases run concurrently and a
/// spill file's name depends only on its slice's first node id, so
/// sharing a dir across cases would let different contents collide.
fn scratch_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "fair-submod-spill-props-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Spill → load round-trips bit for bit (DESIGN.md §11) for the
    /// slices an out-of-core run actually produces: ragged owner
    /// assignments, empty shards, and single-node slices all included.
    #[test]
    fn spilled_slices_round_trip_bitwise(
        (text, n) in edge_list_doc(),
        num_shards in 1usize..6,
        owner_seed in any::<u64>(),
        directed in any::<bool>(),
    ) {
        let mut state = owner_seed | 1;
        let owner: Vec<u32> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % num_shards as u64) as u32
            })
            .collect();
        let whole = read_edge_list(text.as_bytes(), n, directed).unwrap();
        let slices =
            read_shard_slices(text.as_bytes(), n, directed, &owner, num_shards, 16).unwrap();
        let dir = scratch_dir();
        for slice in &slices {
            let spilled = slice.spill(&dir).expect("spill to scratch");
            let reloaded = CsrSlice::load(spilled.path()).expect("reload spilled slice");
            prop_assert_eq!(&reloaded, slice);
        }
        // A single-node slice round-trips too (the smallest shard an
        // out-of-core merge ever reloads).
        let single = whole.slice_rows(&[0]);
        let spilled = single.spill(&dir).expect("spill single-node slice");
        prop_assert_eq!(&CsrSlice::load(spilled.path()).expect("reload"), &single);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every strict prefix of a valid spill file is a typed
    /// [`SpillError`], never a panic: each section is length-prefixed,
    /// so truncation at any byte leaves some section short.
    #[test]
    fn truncated_spill_files_are_typed_errors(
        (text, n) in edge_list_doc(),
        directed in any::<bool>(),
        cut_seed in any::<u64>(),
    ) {
        let whole = read_edge_list(text.as_bytes(), n, directed).unwrap();
        let slice = all_rows(&whole);
        let dir = scratch_dir();
        let spilled = slice.spill(&dir).expect("spill to scratch");
        let bytes = std::fs::read(spilled.path()).expect("read spill file");
        prop_assert!(!bytes.is_empty());
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let truncated = dir.join("truncated.csrs");
        std::fs::write(&truncated, &bytes[..cut]).expect("write truncated file");
        let err = CsrSlice::load(&truncated).expect_err("strict prefix must not parse");
        // The error is typed and printable — out-of-core callers match
        // on it instead of unwinding.
        prop_assert!(matches!(err, SpillError::Corrupt { .. } | SpillError::Io(_)));
        prop_assert!(!err.to_string().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
