//! Scale-equivalence suite for the sharded solve tier: every substrate
//! (coverage, influence, facility location) must shard into owned
//! restricted oracles — the same concrete oracle type over local ids —
//! and solve through `engine::ShardedInstance` with results
//! bit-identical to the centralized algorithms. Sharding is a
//! re-plumbing of the computation, never a different algorithm.
//!
//! Five invariants, each a test below:
//!
//! 1. **Bit identity (GreeDi)** — a `ShardedInstance` over the
//!    substrate-owned restrictions (`CoverageOracle::restrict`,
//!    `RisOracle::restrict`, `FacilityOracle::restrict`), over
//!    `from_central` subset views, and over per-shard CSR slices parsed
//!    from edge-list bytes all return the same items, value bits,
//!    best-shard bits, and oracle-call counts as the centralized
//!    [`greedi`] — for every substrate × shard count × seed cell.
//! 2. **Bit identity (Sieve)** — `solve_sieve` over the shard union is
//!    bit-identical to the centralized [`sieve_streaming`] pass.
//! 3. **Degenerate shard count** — `shards = 1` equals centralized
//!    greedy exactly (one shard *is* the ground set).
//! 4. **Approximation floor** — every shard count stays above the
//!    GreeDi guarantee `(1 − 1/e)/min(√k, p)` relative to centralized
//!    greedy (a lower bound on OPT).
//! 5. **Determinism** — fixed seed ⇒ identical outputs across repeat
//!    runs, rayon thread counts, and the session-based (daemon) drive
//!    path.
//!
//! CI re-runs this suite under `RAYON_NUM_THREADS=1`; the in-test
//! thread sweep covers the multi-worker configurations.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use serde::ToJson;

use fair_submod::core::engine::{
    MergeBuilder, ShardedGreediSession, ShardedInstance, ShardedSieveSession,
};
use fair_submod::core::prelude::*;
use fair_submod::coverage::{dominating_slice_system, CoverageOracle, SetSystem};
use fair_submod::datasets::{rand_fl, rand_mc, seeds};
use fair_submod::graphs::io::{read_shard_slices, write_edge_list};
use fair_submod::graphs::CsrSlice;
use fair_submod::influence::oracle::RisConfig;
use fair_submod::influence::{DiffusionModel, RisOracle};

/// Serializes tests that touch the process-global rayon override (same
/// rationale as `tests/parallel_equivalence.rs`).
fn thread_override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct RestoreThreads;
impl Drop for RestoreThreads {
    fn drop(&mut self) {
        rayon::set_num_threads(0);
    }
}

/// One substrate under test: the centralized base oracle plus its owned
/// restriction — the substrate-specific `restrict` returning the same
/// concrete oracle type over local ids.
struct Substrate {
    label: &'static str,
    base: Arc<dyn DynUtilitySystem>,
    restrict:
        Arc<dyn Fn(&[ItemId]) -> Result<Arc<dyn DynUtilitySystem>, SolverError> + Send + Sync>,
}

impl Substrate {
    /// A `ShardedInstance` whose shards and merge oracle are the owned
    /// substrate restrictions (the production daemon path).
    fn owned_instance(&self, shards: usize, seed: u64) -> ShardedInstance {
        let restrict = Arc::clone(&self.restrict);
        ShardedInstance::from_restrictor(self.base.dyn_num_items(), shards, seed, move |m| {
            restrict(m)
        })
        .expect("valid sharding")
    }

    /// The `from_central` reference path (subset views of one base).
    fn central_instance(&self, shards: usize, seed: u64) -> ShardedInstance {
        ShardedInstance::from_central(Arc::clone(&self.base), shards, seed).expect("valid sharding")
    }
}

/// The three paper substrates, sized for fast exhaustive sweeps.
fn substrates() -> Vec<Substrate> {
    let coverage = Arc::new(rand_mc(2, 150, seeds::RAND + 21).coverage_oracle());
    let influence =
        Arc::new(rand_mc(2, 100, seeds::RAND + 22).ris_oracle(DiffusionModel::ic(0.1), 1_500, 9));
    let facility = Arc::new(rand_fl(3, seeds::FL + 21).oracle());
    let (c, i, f) = (
        Arc::clone(&coverage),
        Arc::clone(&influence),
        Arc::clone(&facility),
    );
    vec![
        Substrate {
            label: "coverage",
            base: coverage,
            restrict: Arc::new(move |m| Ok(Arc::new(c.restrict(m)?) as Arc<dyn DynUtilitySystem>)),
        },
        Substrate {
            label: "influence",
            base: influence,
            restrict: Arc::new(move |m| Ok(Arc::new(i.restrict(m)?) as Arc<dyn DynUtilitySystem>)),
        },
        Substrate {
            label: "facility",
            base: facility,
            restrict: Arc::new(move |m| Ok(Arc::new(f.restrict(m)?) as Arc<dyn DynUtilitySystem>)),
        },
    ]
}

/// Centralized GreeDi on the erased system — the reference every
/// sharded run is compared against, bit for bit.
fn central_greedi(
    base: &dyn DynUtilitySystem,
    k: usize,
    shards: usize,
    seed: u64,
) -> GreediOutcome {
    let mut cfg = GreediConfig::new(k);
    cfg.shards = shards;
    cfg.seed = seed;
    let f = MeanUtility::new(base.dyn_num_users());
    greedi(&ErasedSystem(base), &f, &cfg).expect("valid config")
}

fn assert_bit_identical(sharded: &GreediOutcome, central: &GreediOutcome, label: &str) {
    assert_eq!(sharded.items, central.items, "{label}: items diverged");
    assert_eq!(
        sharded.value.to_bits(),
        central.value.to_bits(),
        "{label}: value {} vs {}",
        sharded.value,
        central.value
    );
    assert_eq!(
        sharded.best_shard_value.to_bits(),
        central.best_shard_value.to_bits(),
        "{label}: best-shard value diverged"
    );
    assert_eq!(
        sharded.oracle_calls, central.oracle_calls,
        "{label}: oracle accounting diverged"
    );
}

/// Invariant 1: the full matrix — three substrates × shard counts ×
/// seeds × both assembly paths (owned restrictions and `from_central`
/// subset views), every cell bit-identical to the one-shot algorithm.
#[test]
fn sharded_solves_are_bit_identical_to_greedi_on_all_substrates() {
    for substrate in substrates() {
        for shards in [1usize, 2, 4, 8] {
            for seed in [21 + shards as u64, 1_021 + shards as u64] {
                let central = central_greedi(substrate.base.as_ref(), 6, shards, seed);
                for (path, instance) in [
                    ("restricted", substrate.owned_instance(shards, seed)),
                    ("from_central", substrate.central_instance(shards, seed)),
                ] {
                    assert_eq!(instance.num_shards(), shards);
                    assert_eq!(instance.num_items(), substrate.base.dyn_num_items());
                    let sharded = instance.solve_greedi(6, GreedyVariant::Lazy);
                    assert_bit_identical(
                        &sharded,
                        &central,
                        &format!("{}/{path}/p={shards}/seed={seed}", substrate.label),
                    );
                }
            }
        }
    }
}

/// Invariant 2: the streaming twin — Sieve-Streaming over the shard
/// union matches the centralized single pass on every substrate, for
/// both assembly paths.
#[test]
fn sharded_sieve_is_bit_identical_to_centralized_sieve_on_all_substrates() {
    for substrate in substrates() {
        let erased = ErasedSystem(substrate.base.as_ref());
        let f = MeanUtility::new(substrate.base.dyn_num_users());
        let cfg = SieveConfig::new(6);
        let central = sieve_streaming(&erased, &f, &cfg).expect("valid config");
        for shards in [1usize, 3, 4, 8] {
            for (path, instance) in [
                ("restricted", substrate.owned_instance(shards, 13)),
                ("from_central", substrate.central_instance(shards, 13)),
            ] {
                let sharded = instance.solve_sieve(&cfg);
                let label = format!("{}/{path}/p={shards}", substrate.label);
                assert_eq!(sharded.items, central.items, "{label}: items diverged");
                assert_eq!(
                    sharded.value.to_bits(),
                    central.value.to_bits(),
                    "{label}: value diverged"
                );
                assert_eq!(
                    sharded.candidates, central.candidates,
                    "{label}: candidate accounting diverged"
                );
                assert_eq!(
                    sharded.oracle_calls, central.oracle_calls,
                    "{label}: oracle accounting diverged"
                );
            }
        }
    }
}

/// Invariant 1, coverage slice form: per-shard CSR slices parsed
/// straight from edge-list bytes (never materializing the full graph on
/// the sharded side), each backing its own dominating-set sub-oracle,
/// still reproduce the centralized run bit for bit — the small-scale
/// twin of the `sharded_1m` perfbase scenario.
#[test]
fn slice_backed_shards_match_the_centralized_solve() {
    let dataset = rand_mc(2, 400, seeds::RAND + 23);
    let n = dataset.graph.num_nodes();
    let mut bytes = Vec::new();
    write_edge_list(&dataset.graph, &mut bytes).expect("in-memory write");

    let (k, num_shards, seed) = (8usize, 4usize, 77u64);
    let central = central_greedi(&dataset.coverage_oracle(), k, num_shards, seed);

    let partition = shard_partition(n, num_shards, seed);
    let mut owner = vec![0u32; n];
    for (s, members) in partition.iter().enumerate() {
        for &v in members {
            owner[v as usize] = s as u32;
        }
    }
    // A tiny chunk size forces ragged chunk boundaries through the
    // streaming parser on the way to the slices.
    let slices: Vec<Arc<CsrSlice>> = read_shard_slices(
        &bytes[..],
        n,
        dataset.graph.is_directed(),
        &owner,
        num_shards,
        64,
    )
    .expect("well-formed edge list")
    .into_iter()
    .map(Arc::new)
    .collect();
    let shard_oracles = slices
        .iter()
        .map(|slice| ShardOracle {
            members: slice.nodes().to_vec(),
            system: Arc::new(CoverageOracle::new(
                dominating_slice_system(slice, n),
                &dataset.groups,
            )),
        })
        .collect();
    let merge_slices = slices.clone();
    let merge_groups = dataset.groups.clone();
    let merge: MergeBuilder = Box::new(move |pool| {
        let sets = pool
            .iter()
            .map(|&v| {
                let mut s = merge_slices
                    .iter()
                    .find_map(|sl| sl.neighbors_of(v))
                    .expect("pool ids come from shard members")
                    .to_vec();
                s.push(v);
                s
            })
            .collect();
        Arc::new(CoverageOracle::new(SetSystem::new(sets, n), &merge_groups))
    });
    let instance = ShardedInstance::new(shard_oracles, merge).expect("valid slice shards");
    let sharded = instance.solve_greedi(k, GreedyVariant::Lazy);
    assert_bit_identical(&sharded, &central, "slice-backed coverage");
}

/// Invariant 1, influence slice form: the RR arena is regenerated from
/// per-shard `CsrSlice`s (reassembled into the sampling graph, which is
/// bitwise equal to the original CSR), then shard-restricted per
/// member list — the slice-backed RIS path the daemon's sharded
/// influence solves ride on.
#[test]
fn slice_backed_ris_shards_match_the_resident_oracle_solve() {
    let dataset = rand_mc(2, 120, seeds::RAND + 27);
    let n = dataset.graph.num_nodes();
    let model = DiffusionModel::ic(0.1);
    let cfg = RisConfig::new(1_200, 7);
    let resident = RisOracle::generate(&dataset.graph, model, &dataset.groups, &cfg);

    let (k, num_shards, seed) = (6usize, 3usize, 55u64);
    let central = central_greedi(&resident, k, num_shards, seed);

    let mut bytes = Vec::new();
    write_edge_list(&dataset.graph, &mut bytes).expect("in-memory write");
    let partition = shard_partition(n, num_shards, seed);
    let mut owner = vec![0u32; n];
    for (s, members) in partition.iter().enumerate() {
        for &v in members {
            owner[v as usize] = s as u32;
        }
    }
    let slices = read_shard_slices(
        &bytes[..],
        n,
        dataset.graph.is_directed(),
        &owner,
        num_shards,
        64,
    )
    .expect("well-formed edge list");
    // RR sampling walks in-neighbors across shard boundaries, so the
    // slice-backed oracle samples over the reassembled graph; each
    // shard then owns its members' counter rows (§8 row separability).
    let sliced = Arc::new(RisOracle::generate_from_slices(
        &slices,
        n,
        dataset.graph.is_directed(),
        model,
        &dataset.groups,
        &cfg,
    ));
    let restrictor = Arc::clone(&sliced);
    let instance = ShardedInstance::from_restrictor(n, num_shards, seed, move |members| {
        Ok(Arc::new(restrictor.restrict(members)?) as Arc<dyn DynUtilitySystem>)
    })
    .expect("valid sharding");
    let sharded = instance.solve_greedi(k, GreedyVariant::Lazy);
    assert_bit_identical(&sharded, &central, "slice-backed influence");
}

/// Invariant 3: with a single shard, round 1 is plain greedy over the
/// whole ground set, so both GreeDi forms land exactly on centralized
/// greedy's value — on every substrate.
#[test]
fn single_shard_greedi_equals_centralized_greedy() {
    for substrate in substrates() {
        let f = MeanUtility::new(substrate.base.dyn_num_users());
        let plain = greedy(
            &ErasedSystem(substrate.base.as_ref()),
            &f,
            &GreedyConfig::lazy(6),
        );
        let central = central_greedi(substrate.base.as_ref(), 6, 1, 5);
        for (path, instance) in [
            ("restricted", substrate.owned_instance(1, 5)),
            ("from_central", substrate.central_instance(1, 5)),
        ] {
            let sharded = instance.solve_greedi(6, GreedyVariant::Lazy);
            assert_eq!(
                sharded.value.to_bits(),
                plain.value.to_bits(),
                "{}/{path}: p=1 sharded {} vs greedy {}",
                substrate.label,
                sharded.value,
                plain.value
            );
        }
        assert_eq!(
            central.value.to_bits(),
            plain.value.to_bits(),
            "{}",
            substrate.label
        );
    }
}

/// Invariant 4: a shard sweep stays above the paper guarantee
/// `(1 − 1/e)/min(√k, p)` relative to centralized greedy (which lower
/// bounds OPT, so this is implied by — and weaker than — the true
/// guarantee, yet catches any broken merge phase immediately).
#[test]
fn shard_sweep_respects_the_greedi_guarantee() {
    let k = 8usize;
    for substrate in substrates() {
        let f = MeanUtility::new(substrate.base.dyn_num_users());
        let greedy_value = greedy(
            &ErasedSystem(substrate.base.as_ref()),
            &f,
            &GreedyConfig::lazy(k),
        )
        .value;
        for shards in [1usize, 2, 4, 8] {
            let out = substrate
                .owned_instance(shards, 3)
                .solve_greedi(k, GreedyVariant::Lazy);
            let bound = (1.0 - (-1.0f64).exp()) / (k as f64).sqrt().min(shards as f64);
            assert!(
                out.value + 1e-9 >= bound * greedy_value,
                "{}/p={shards}: sharded {} below {bound:.3} x greedy {greedy_value}",
                substrate.label,
                out.value
            );
            assert!(
                out.value + 1e-12 >= out.best_shard_value,
                "{}/p={shards}: merge returned less than its best shard",
                substrate.label
            );
        }
    }
}

/// Invariant 5a: the daemon's session drive path — one shard per
/// `step()`, finished against the centralized system — produces reports
/// identical (up to wall-clock) to the centralized registry solvers, on
/// every substrate.
#[test]
fn sharded_sessions_match_the_centralized_registry_reports() {
    let registry = SolverRegistry::default();
    for substrate in substrates() {
        let mut params = ScenarioParams::new(6, 0.8);
        params.shards = 3;
        params.seed = 17;
        params.epsilon = 0.1;

        let instance = Arc::new(substrate.owned_instance(3, params.seed));
        let mut greedi_session = ShardedGreediSession::open(Arc::clone(&instance), &params);
        let mut rounds = 0usize;
        while !greedi_session.done() {
            greedi_session.step(substrate.base.as_ref());
            rounds += 1;
        }
        assert_eq!(rounds, 4, "{}: 3 shard rounds + 1 merge", substrate.label);
        let mut report = greedi_session
            .finish(substrate.base.as_ref())
            .expect("finished session reports");
        let mut central = registry
            .solve("GreeDi", substrate.base.as_ref(), &params)
            .expect("centralized GreeDi");
        report.seconds = 0.0;
        central.seconds = 0.0;
        assert_eq!(
            report.to_json().to_compact_string(),
            central.to_json().to_compact_string(),
            "{}: GreeDi session report diverged",
            substrate.label
        );

        let mut sieve_session = ShardedSieveSession::open(&instance, &params);
        while !sieve_session.done() {
            sieve_session.step(substrate.base.as_ref());
        }
        let mut report = sieve_session
            .finish(substrate.base.as_ref())
            .expect("finished session reports");
        let mut central = registry
            .solve("SieveStreaming", substrate.base.as_ref(), &params)
            .expect("centralized sieve");
        report.seconds = 0.0;
        central.seconds = 0.0;
        assert_eq!(
            report.to_json().to_compact_string(),
            central.to_json().to_compact_string(),
            "{}: Sieve session report diverged",
            substrate.label
        );
    }
}

/// Invariant 5b: fixed seed ⇒ identical outputs across repeat runs and
/// across rayon thread counts (the round-1 parallel fold is ordered by
/// shard index, so worker count must never show in the result) — for
/// both the owned-restriction and subset-view assembly paths.
#[test]
fn sharded_solves_are_deterministic_per_seed_and_thread_count() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    let substrate = &substrates()[0];

    let reference = substrate
        .owned_instance(4, 11)
        .solve_greedi(6, GreedyVariant::Lazy);
    let central = central_greedi(substrate.base.as_ref(), 6, 4, 11);
    assert_bit_identical(&reference, &central, "reference");
    let sieve_reference = substrate
        .owned_instance(4, 11)
        .solve_sieve(&SieveConfig::new(6));

    for threads in [1usize, 2, 4, 8] {
        rayon::set_num_threads(threads);
        for rerun in 0..2 {
            for (path, instance) in [
                ("restricted", substrate.owned_instance(4, 11)),
                ("from_central", substrate.central_instance(4, 11)),
            ] {
                let out = instance.solve_greedi(6, GreedyVariant::Lazy);
                assert_bit_identical(
                    &out,
                    &reference,
                    &format!("{path} threads={threads} rerun={rerun}"),
                );
                let sieve = instance.solve_sieve(&SieveConfig::new(6));
                assert_eq!(sieve.items, sieve_reference.items);
                assert_eq!(sieve.value.to_bits(), sieve_reference.value.to_bits());
            }
        }
    }
}

/// Satellite hardening: malformed member lists and partitions are typed
/// `InvalidParams` rejections from every substrate's `restrict` /
/// `partition_shards` — never panics — and the sharded assembly
/// propagates them.
#[test]
fn malformed_partitions_are_typed_rejections_on_every_substrate() {
    for substrate in substrates() {
        let n = substrate.base.dyn_num_items();
        let restrict = &substrate.restrict;
        // Valid ragged partition as a control.
        let thirds: Vec<Vec<ItemId>> = vec![
            (0..5).collect(),
            (5..6).collect(),
            (6..n as ItemId).collect(),
        ];
        for members in &thirds {
            let shard = restrict(members).expect("valid ragged shard");
            assert_eq!(shard.dyn_num_items(), members.len(), "{}", substrate.label);
        }
        for (case, members) in [
            ("empty members", vec![]),
            ("unsorted members", vec![3 as ItemId, 1]),
            ("duplicate members", vec![2 as ItemId, 2]),
            ("out-of-range member", vec![n as ItemId]),
        ] {
            assert!(
                matches!(restrict(&members), Err(SolverError::InvalidParams { .. })),
                "{}: {case} must be a typed rejection",
                substrate.label
            );
        }
        // A restrictor wrapping the owned restrict must surface typed
        // errors through `from_restrictor` (empty ground set => every
        // shard's member list is empty).
        let bad = ShardedInstance::from_restrictor(0, 2, 1, {
            let r = Arc::clone(&substrate.restrict);
            move |m| r(m)
        });
        assert!(
            matches!(bad, Err(SolverError::InvalidParams { .. })),
            "{}: empty ground set must be a typed rejection",
            substrate.label
        );
    }
}
