//! Scale-equivalence suite for the sharded solve tier (ISSUE PR 6):
//! `engine::ShardedInstance` must be a pure re-plumbing of the one-shot
//! [`greedi`] algorithm — per-shard oracles and a lazily built merge
//! oracle, never a different algorithm.
//!
//! Four invariants, each a test below:
//!
//! 1. **Bit identity** — a `ShardedInstance` (both the `from_central`
//!    wrapper and real per-shard CSR-slice oracles) returns the same
//!    items, value bits, best-shard bits, and oracle-call counts as the
//!    centralized `greedi` on all three substrates (coverage, influence,
//!    facility location).
//! 2. **Degenerate shard count** — `shards = 1` equals centralized
//!    greedy (one shard *is* the ground set; round 2 re-runs on it).
//! 3. **Approximation floor** — every shard count in {1, 2, 4, 8} stays
//!    above the GreeDi guarantee `(1 − 1/e)/min(√k, p)` relative to
//!    centralized greedy (a lower bound on OPT).
//! 4. **Determinism** — fixed seed ⇒ identical outputs across repeat
//!    runs and across rayon thread counts (round 1 runs shards in
//!    parallel but folds in shard order).
//!
//! CI re-runs this suite under `RAYON_NUM_THREADS=1`; the in-test
//! thread sweep covers the multi-worker configurations.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use fair_submod::core::engine::MergeBuilder;
use fair_submod::core::prelude::*;
use fair_submod::coverage::{dominating_slice_system, CoverageOracle, SetSystem};
use fair_submod::datasets::{rand_fl, rand_mc, seeds};
use fair_submod::graphs::io::{read_shard_slices, write_edge_list};
use fair_submod::graphs::CsrSlice;
use fair_submod::influence::DiffusionModel;

/// Serializes tests that touch the process-global rayon override (same
/// rationale as `tests/parallel_equivalence.rs`).
fn thread_override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct RestoreThreads;
impl Drop for RestoreThreads {
    fn drop(&mut self) {
        rayon::set_num_threads(0);
    }
}

/// Centralized GreeDi on the erased system — the reference every
/// sharded run is compared against, bit for bit.
fn central_greedi(
    base: &dyn DynUtilitySystem,
    k: usize,
    shards: usize,
    seed: u64,
) -> GreediOutcome {
    let mut cfg = GreediConfig::new(k);
    cfg.shards = shards;
    cfg.seed = seed;
    let f = MeanUtility::new(base.dyn_num_users());
    greedi(&ErasedSystem(base), &f, &cfg).expect("valid config")
}

fn assert_bit_identical(sharded: &GreediOutcome, central: &GreediOutcome, label: &str) {
    assert_eq!(sharded.items, central.items, "{label}: items diverged");
    assert_eq!(
        sharded.value.to_bits(),
        central.value.to_bits(),
        "{label}: value {} vs {}",
        sharded.value,
        central.value
    );
    assert_eq!(
        sharded.best_shard_value.to_bits(),
        central.best_shard_value.to_bits(),
        "{label}: best-shard value diverged"
    );
    assert_eq!(
        sharded.oracle_calls, central.oracle_calls,
        "{label}: oracle accounting diverged"
    );
}

/// Invariant 1, `from_central` form: the sharded tier over restricted
/// views of one base oracle is bit-identical to the one-shot algorithm
/// on every substrate and shard count.
#[test]
fn sharded_solves_are_bit_identical_to_greedi_on_all_substrates() {
    let mc = rand_mc(2, 150, seeds::RAND + 21);
    let coverage = mc.coverage_oracle();
    let im = rand_mc(2, 100, seeds::RAND + 22);
    let influence = im.ris_oracle(DiffusionModel::ic(0.1), 1_500, 9);
    let fl = rand_fl(3, seeds::FL + 21);
    let facility = fl.oracle();

    let substrates: Vec<(&str, Arc<dyn DynUtilitySystem>)> = vec![
        ("coverage", Arc::new(coverage)),
        ("influence", Arc::new(influence)),
        ("facility", Arc::new(facility)),
    ];
    for (label, base) in substrates {
        for shards in [1usize, 2, 4, 8] {
            let seed = 21 + shards as u64;
            let central = central_greedi(base.as_ref(), 6, shards, seed);
            let instance = ShardedInstance::from_central(Arc::clone(&base), shards, seed)
                .expect("valid sharding");
            assert_eq!(instance.num_shards(), shards);
            assert_eq!(instance.num_items(), base.dyn_num_items());
            let sharded = instance.solve_greedi(6, GreedyVariant::Lazy);
            assert_bit_identical(&sharded, &central, &format!("{label}/p={shards}"));
        }
    }
}

/// Invariant 1, streamed form: per-shard CSR slices parsed straight
/// from edge-list bytes (never materializing the full graph on the
/// sharded side), each backing its own dominating-set sub-oracle, still
/// reproduce the centralized run bit for bit — the small-scale twin of
/// the `sharded_1m` perfbase scenario.
#[test]
fn slice_backed_shards_match_the_centralized_solve() {
    let dataset = rand_mc(2, 400, seeds::RAND + 23);
    let n = dataset.graph.num_nodes();
    let mut bytes = Vec::new();
    write_edge_list(&dataset.graph, &mut bytes).expect("in-memory write");

    let (k, num_shards, seed) = (8usize, 4usize, 77u64);
    let central = central_greedi(&dataset.coverage_oracle(), k, num_shards, seed);

    let partition = shard_partition(n, num_shards, seed);
    let mut owner = vec![0u32; n];
    for (s, members) in partition.iter().enumerate() {
        for &v in members {
            owner[v as usize] = s as u32;
        }
    }
    // A tiny chunk size forces ragged chunk boundaries through the
    // streaming parser on the way to the slices.
    let slices: Vec<Arc<CsrSlice>> = read_shard_slices(
        &bytes[..],
        n,
        dataset.graph.is_directed(),
        &owner,
        num_shards,
        64,
    )
    .expect("well-formed edge list")
    .into_iter()
    .map(Arc::new)
    .collect();
    let shard_oracles = slices
        .iter()
        .map(|slice| ShardOracle {
            members: slice.nodes().to_vec(),
            system: Box::new(CoverageOracle::new(
                dominating_slice_system(slice, n),
                &dataset.groups,
            )),
        })
        .collect();
    let merge_slices = slices.clone();
    let merge_groups = dataset.groups.clone();
    let merge: MergeBuilder = Box::new(move |pool| {
        let sets = pool
            .iter()
            .map(|&v| {
                let mut s = merge_slices
                    .iter()
                    .find_map(|sl| sl.neighbors_of(v))
                    .expect("pool ids come from shard members")
                    .to_vec();
                s.push(v);
                s
            })
            .collect();
        Box::new(CoverageOracle::new(SetSystem::new(sets, n), &merge_groups))
    });
    let instance = ShardedInstance::new(shard_oracles, merge).expect("valid slice shards");
    let sharded = instance.solve_greedi(k, GreedyVariant::Lazy);
    assert_bit_identical(&sharded, &central, "slice-backed coverage");
}

/// Invariant 2: with a single shard, round 1 is plain greedy over the
/// whole ground set, so both GreeDi forms land exactly on centralized
/// greedy's value.
#[test]
fn single_shard_greedi_equals_centralized_greedy() {
    let mc = rand_mc(2, 150, seeds::RAND + 24);
    let coverage = mc.coverage_oracle();
    let fl = rand_fl(2, seeds::FL + 24);
    let facility = fl.oracle();
    let substrates: Vec<(&str, Arc<dyn DynUtilitySystem>)> = vec![
        ("coverage", Arc::new(coverage)),
        ("facility", Arc::new(facility)),
    ];
    for (label, base) in substrates {
        let f = MeanUtility::new(base.dyn_num_users());
        let plain = greedy(&ErasedSystem(base.as_ref()), &f, &GreedyConfig::lazy(6));
        let central = central_greedi(base.as_ref(), 6, 1, 5);
        let sharded = ShardedInstance::from_central(Arc::clone(&base), 1, 5)
            .expect("valid sharding")
            .solve_greedi(6, GreedyVariant::Lazy);
        assert_eq!(
            sharded.value.to_bits(),
            plain.value.to_bits(),
            "{label}: p=1 sharded {} vs greedy {}",
            sharded.value,
            plain.value
        );
        assert_eq!(central.value.to_bits(), plain.value.to_bits(), "{label}");
    }
}

/// Invariant 3: a shard sweep stays above the paper guarantee
/// `(1 − 1/e)/min(√k, p)` relative to centralized greedy (which lower
/// bounds OPT, so this is implied by — and weaker than — the true
/// guarantee, yet catches any broken merge phase immediately).
#[test]
fn shard_sweep_respects_the_greedi_guarantee() {
    let k = 8usize;
    let mc = rand_mc(2, 200, seeds::RAND + 25);
    let base: Arc<dyn DynUtilitySystem> = Arc::new(mc.coverage_oracle());
    let f = MeanUtility::new(base.dyn_num_users());
    let greedy_value = greedy(&ErasedSystem(base.as_ref()), &f, &GreedyConfig::lazy(k)).value;
    for shards in [1usize, 2, 4, 8] {
        let out = ShardedInstance::from_central(Arc::clone(&base), shards, 3)
            .expect("valid sharding")
            .solve_greedi(k, GreedyVariant::Lazy);
        let bound = (1.0 - (-1.0f64).exp()) / (k as f64).sqrt().min(shards as f64);
        assert!(
            out.value + 1e-9 >= bound * greedy_value,
            "p={shards}: sharded {} below {bound:.3} x greedy {greedy_value}",
            out.value
        );
        assert!(
            out.value + 1e-12 >= out.best_shard_value,
            "p={shards}: merge returned less than its best shard"
        );
    }
}

/// Invariant 4: fixed seed ⇒ identical outputs across repeat runs and
/// across rayon thread counts (the round-1 parallel fold is ordered by
/// shard index, so worker count must never show in the result).
#[test]
fn sharded_solves_are_deterministic_per_seed_and_thread_count() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    let mc = rand_mc(2, 180, seeds::RAND + 26);
    let base: Arc<dyn DynUtilitySystem> = Arc::new(mc.coverage_oracle());

    let reference = ShardedInstance::from_central(Arc::clone(&base), 4, 11)
        .expect("valid sharding")
        .solve_greedi(6, GreedyVariant::Lazy);
    let central = central_greedi(base.as_ref(), 6, 4, 11);
    assert_bit_identical(&reference, &central, "reference");

    for threads in [1usize, 2, 4, 8] {
        rayon::set_num_threads(threads);
        for rerun in 0..2 {
            let out = ShardedInstance::from_central(Arc::clone(&base), 4, 11)
                .expect("valid sharding")
                .solve_greedi(6, GreedyVariant::Lazy);
            assert_bit_identical(
                &out,
                &reference,
                &format!("threads={threads} rerun={rerun}"),
            );
        }
    }
}
