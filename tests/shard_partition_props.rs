//! Property-based tests (proptest) for substrate shard partitioning —
//! the sibling of `tests/graph_chunk_props.rs` one layer up the stack.
//! Random edge-list documents and random benefit matrices round-trip
//! through `partition_shards`: every restricted oracle must be the same
//! computation over local ids, so subset values through a shard are
//! bitwise equal to the centralized oracle over the mapped global ids,
//! shard singleton-value totals agree with the centralized sweep, the
//! RR-set arena partitions exactly (multiset union of the shard arenas
//! is the central arena), and ragged partitions — empty-prone owner
//! draws, forced singleton shards — behave identically. Malformed
//! partitions (overlap, gap, out-of-range, empty shard, unsorted
//! members) are typed `SolverError::InvalidParams` rejections on every
//! substrate, never panics.
//!
//! CI re-runs this suite under `RAYON_NUM_THREADS=1` alongside
//! `sharded_equivalence` to pin thread-count independence.
//!
//! This test binary also asserts the *allocation count* of
//! `RisOracle::restrict` (DESIGN.md §11: a restrict is an O(|members|)
//! id translation, so its allocation count is a small constant,
//! independent of oracle size). Counting allocations takes a measuring
//! `#[global_allocator]`, whose `GlobalAlloc` impl is necessarily
//! `unsafe` — the narrow, test-binary-only exception to the
//! workspace's `unsafe_code = "deny"` (the polling shim is the only
//! shipped-code exception).
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use proptest::prelude::*;

use fair_submod::core::prelude::*;
use fair_submod::coverage::{dominating_set_system, CoverageOracle};
use fair_submod::facility::{BenefitMatrix, FacilityOracle};
use fair_submod::graphs::io::read_edge_list;
use fair_submod::graphs::Groups;
use fair_submod::influence::oracle::RisConfig;
use fair_submod::influence::{DiffusionModel, RisOracle};

thread_local! {
    /// Per-thread allocation counter: const-initialized (no allocation,
    /// no destructor), so the allocator hooks can bump it reentrantly
    /// and concurrently running tests never pollute each other's count.
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

/// `System`, plus a per-thread count of every `alloc`/`realloc` call —
/// the measuring instrument behind
/// `ris_restrict_allocation_count_is_size_independent`.
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Allocations made by the current thread while running `f`.
fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

/// xorshift64 step shared by every generator below (same kernel as the
/// graph-chunk sibling, so failures shrink comparably).
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Strategy: a random edge-list document over `n` nodes — duplicate
/// edges, self-loops, blank lines, and `#` comments all appear.
fn edge_list_doc() -> impl Strategy<Value = (String, usize)> {
    (2usize..20, 0usize..40, any::<u64>()).prop_map(|(n, edges, seed)| {
        let mut state = seed | 1;
        let mut lines: Vec<String> = Vec::new();
        for _ in 0..edges {
            match xorshift(&mut state) % 10 {
                0 => lines.push(String::new()),
                1 => lines.push("# comment".to_string()),
                _ => lines.push(format!(
                    "{} {}",
                    xorshift(&mut state) % n as u64,
                    xorshift(&mut state) % n as u64
                )),
            }
        }
        (lines.join("\n"), n)
    })
}

/// Strategy: a random non-negative benefit matrix (m users × n items).
fn benefit_matrix_doc() -> impl Strategy<Value = (Vec<f64>, usize, usize)> {
    (2usize..8, 2usize..14, any::<u64>()).prop_map(|(m, n, seed)| {
        let mut state = seed | 1;
        let b: Vec<f64> = (0..m * n)
            .map(|_| (xorshift(&mut state) % 1_000) as f64 / 250.0)
            .collect();
        (b, m, n)
    })
}

/// A two-group assignment over `count` users with both groups
/// guaranteed inhabited (group sizes must be positive).
fn random_groups(count: usize, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    let mut assignment: Vec<u32> = (0..count)
        .map(|_| (xorshift(&mut state) % 2) as u32)
        .collect();
    assignment[0] = 0;
    if count > 1 {
        assignment[1] = 1;
    } else {
        assignment[0] = 0;
    }
    assignment
}

/// A random exact-cover partition of `0..n` into at most `num_shards`
/// ascending member lists. Ragged by construction (owner draws are
/// uniform, empties are dropped), and `force_singleton` pins item 0
/// into a shard of its own so singleton shards stay in every sweep.
fn random_partition(
    n: usize,
    num_shards: usize,
    seed: u64,
    force_singleton: bool,
) -> Vec<Vec<ItemId>> {
    let mut state = seed | 1;
    let p = num_shards.max(1);
    let mut shards: Vec<Vec<ItemId>> = vec![Vec::new(); p];
    let singleton = force_singleton && n >= 2 && p >= 2;
    let start = if singleton {
        shards[0].push(0);
        1
    } else {
        0
    };
    for v in start..n {
        let lanes = if singleton { p - 1 } else { p };
        let s = (xorshift(&mut state) % lanes as u64) as usize + usize::from(singleton);
        shards[s].push(v as ItemId);
    }
    shards.retain(|members| !members.is_empty());
    shards
}

/// Coverage oracle (dominating-set system) parsed from a random
/// edge-list document.
fn coverage_from_doc(text: &str, n: usize, group_seed: u64) -> CoverageOracle {
    let graph = read_edge_list(text.as_bytes(), n, false).expect("generator emits valid documents");
    let groups = Groups::from_assignment(random_groups(n, group_seed));
    CoverageOracle::new(dominating_set_system(&graph), &groups)
}

/// Asserts that a shard oracle is the centralized computation over
/// local ids: every local subset evaluates bitwise equal (f and g) to
/// the central oracle over the mapped global ids. Exercised on every
/// singleton and on the shard's full prefix chain, which walks the
/// incremental state through the same update order on both sides.
fn assert_shard_is_subset_view<S: UtilitySystem, C: UtilitySystem>(
    shard: &S,
    central: &C,
    members: &[ItemId],
) {
    assert_eq!(shard.num_items(), members.len());
    assert_eq!(shard.num_users(), central.num_users());
    for (local, &global) in members.iter().enumerate() {
        let local_eval = evaluate(shard, &[local as ItemId]);
        let central_eval = evaluate(central, &[global]);
        assert_eq!(local_eval.f.to_bits(), central_eval.f.to_bits());
        assert_eq!(local_eval.g.to_bits(), central_eval.g.to_bits());
    }
    for prefix in 1..=members.len() {
        let local: Vec<ItemId> = (0..prefix as ItemId).collect();
        let global: Vec<ItemId> = members[..prefix].to_vec();
        let local_eval = evaluate(shard, &local);
        let central_eval = evaluate(central, &global);
        assert_eq!(local_eval.f.to_bits(), central_eval.f.to_bits());
        assert_eq!(local_eval.g.to_bits(), central_eval.g.to_bits());
    }
}

/// Singleton-value totals for a centralized oracle (global item order)
/// and for a partition of shard oracles (shard-major order).
fn singleton_totals<S: UtilitySystem>(oracle: &S) -> f64 {
    (0..oracle.num_items())
        .map(|v| evaluate(oracle, &[v as ItemId]).f)
        .sum()
}

/// Summation-order tolerance: shard-major and global-order singleton
/// sweeps add the same bitwise-identical terms in different orders.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Coverage: random edge lists round-trip through
    /// `partition_shards` — every shard is a bitwise subset view and
    /// the shard singleton totals rebuild the centralized sweep.
    #[test]
    fn coverage_partitions_are_bitwise_subset_views(
        (text, n) in edge_list_doc(),
        num_shards in 1usize..5,
        partition_seed in any::<u64>(),
        group_seed in any::<u64>(),
        force_singleton in any::<bool>(),
    ) {
        let central = coverage_from_doc(&text, n, group_seed);
        let partition = random_partition(n, num_shards, partition_seed, force_singleton);
        let shards = central.partition_shards(&partition).expect("valid partition");
        prop_assert_eq!(shards.len(), partition.len());
        let mut sharded_total = 0.0;
        for (shard, members) in shards.iter().zip(&partition) {
            assert_shard_is_subset_view(shard, &central, members);
            sharded_total += singleton_totals(shard);
        }
        prop_assert!(close(sharded_total, singleton_totals(&central)));
    }

    /// Facility location: random benefit matrices round-trip through
    /// column partitioning the same way.
    #[test]
    fn facility_partitions_are_bitwise_subset_views(
        (b, m, n) in benefit_matrix_doc(),
        num_shards in 1usize..5,
        partition_seed in any::<u64>(),
        group_seed in any::<u64>(),
        force_singleton in any::<bool>(),
    ) {
        let central = FacilityOracle::new(
            BenefitMatrix::new(b, m, n),
            random_groups(m, group_seed),
        );
        let partition = random_partition(n, num_shards, partition_seed, force_singleton);
        let shards = central.partition_shards(&partition).expect("valid partition");
        prop_assert_eq!(shards.len(), partition.len());
        let mut sharded_total = 0.0;
        for (shard, members) in shards.iter().zip(&partition) {
            assert_shard_is_subset_view(shard, &central, members);
            sharded_total += singleton_totals(shard);
        }
        prop_assert!(close(sharded_total, singleton_totals(&central)));
    }

    /// Malformed partitions are typed rejections — overlap, gap,
    /// out-of-range member, inserted empty shard, unsorted members —
    /// on both matrix-backed substrates, never a panic. (The influence
    /// negatives ride the same `validate_shard_partition` path and are
    /// pinned by `tests/sharded_equivalence.rs`.)
    #[test]
    fn malformed_partitions_are_typed_rejections(
        (text, n) in edge_list_doc(),
        (b, m, fl_n) in benefit_matrix_doc(),
        num_shards in 2usize..5,
        partition_seed in any::<u64>(),
        corrupt_kind in 0u8..5,
    ) {
        let coverage = coverage_from_doc(&text, n, partition_seed);
        let facility = FacilityOracle::new(
            BenefitMatrix::new(b, m, fl_n),
            random_groups(m, partition_seed),
        );
        for (items, run) in [
            (n, Box::new(|p: &[Vec<ItemId>]| coverage.partition_shards(p).map(|_| ()))
                as Box<dyn Fn(&[Vec<ItemId>]) -> Result<(), SolverError>>),
            (fl_n, Box::new(|p: &[Vec<ItemId>]| facility.partition_shards(p).map(|_| ()))),
        ] {
            let mut partition = random_partition(items, num_shards, partition_seed, false);
            match corrupt_kind {
                // Overlap: shard 0's first member duplicated into the
                // last shard (sorted insert keeps members ascending).
                0 if partition.len() >= 2 => {
                    let dup = partition[0][0];
                    let last = partition.len() - 1;
                    let at = partition[last].partition_point(|&v| v < dup);
                    partition[last].insert(at, dup);
                }
                // Gap: one shard dropped, so the cover is not exact.
                1 if partition.len() >= 2 => {
                    partition.pop();
                }
                // Out-of-range member appended past the universe.
                2 => partition.last_mut().unwrap().push(items as ItemId),
                // Empty shard inserted mid-partition.
                3 => partition.insert(partition.len() / 2, Vec::new()),
                // Unsorted members (needs a shard with two entries).
                _ => {
                    let Some(shard) = partition.iter_mut().find(|s| s.len() >= 2) else {
                        continue;
                    };
                    shard.reverse();
                }
            }
            if corrupt_kind <= 1 && partition.len() < 2 {
                continue; // mutation was a no-op on a degenerate draw
            }
            let err = run(&partition).expect_err("corrupted partition must be rejected");
            prop_assert!(
                matches!(err, SolverError::InvalidParams { .. }),
                "expected InvalidParams, got {err:?}"
            );
        }
    }
}

proptest! {
    // RR generation dominates the budget here; fewer, larger cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Influence: the RR-set arena partitions exactly. Each (rr, node)
    /// incidence lands in precisely the shard owning the node — the
    /// multiset union of the shard arenas is the central arena — every
    /// shard sees the full RR sample, and spreads through a shard are
    /// bitwise equal to the centralized oracle.
    #[test]
    fn ris_partitions_split_the_rr_arena_exactly(
        (text, n) in edge_list_doc(),
        num_shards in 1usize..5,
        partition_seed in any::<u64>(),
        rr_seed in any::<u64>(),
        force_singleton in any::<bool>(),
    ) {
        let graph = read_edge_list(text.as_bytes(), n, false).expect("valid document");
        let groups = Groups::from_assignment(random_groups(n, partition_seed));
        let central = RisOracle::generate(
            &graph,
            DiffusionModel::ic(0.1),
            &groups,
            &RisConfig::new(160, rr_seed),
        );
        let partition = random_partition(n, num_shards, partition_seed, force_singleton);
        let shards = central.partition_shards(&partition).expect("valid partition");

        let mut arena_total = 0usize;
        for (shard, members) in shards.iter().zip(&partition) {
            prop_assert_eq!(shard.num_rr_sets(), central.num_rr_sets());
            arena_total += shard.arena_len();
            assert_shard_is_subset_view(shard, &central, members);
            for (local, &global) in members.iter().enumerate() {
                let local_spread = shard.estimated_spread(&[local as ItemId]);
                let central_spread = central.estimated_spread(&[global]);
                prop_assert_eq!(local_spread.to_bits(), central_spread.to_bits());
            }
        }
        prop_assert_eq!(arena_total, central.arena_len());
    }
}

/// `RisOracle::restrict` is a zero-copy view build (DESIGN.md §11): it
/// materializes the member list and a handful of small clones, nothing
/// sized by the oracle. Pin that with the counting allocator: the same
/// member count against a 4×-larger graph and an 8×-larger RR sample
/// must allocate exactly as many times — and few times in absolute
/// terms — so parallel shard fan-out never serializes on the allocator.
#[test]
fn ris_restrict_allocation_count_is_size_independent() {
    let build = |n: usize, num_rr: usize, seed: u64| {
        let mut state = seed | 1;
        let lines: Vec<String> = (0..n * 3)
            .map(|_| {
                format!(
                    "{} {}",
                    xorshift(&mut state) % n as u64,
                    xorshift(&mut state) % n as u64
                )
            })
            .collect();
        let graph = read_edge_list(lines.join("\n").as_bytes(), n, false).expect("valid doc");
        let groups = Groups::from_assignment(random_groups(n, seed));
        RisOracle::generate(
            &graph,
            DiffusionModel::ic(0.1),
            &groups,
            &RisConfig::new(num_rr, seed),
        )
    };
    let small = build(60, 400, 7);
    let large = build(240, 3_200, 9);
    let members: Vec<ItemId> = (0..30).collect();

    // Warm up any lazy process state off the measured path.
    small.restrict(&members).expect("valid members");
    large.restrict(&members).expect("valid members");

    let on_small = allocations_during(|| {
        small.restrict(&members).expect("valid members");
    });
    let on_large = allocations_during(|| {
        large.restrict(&members).expect("valid members");
    });
    assert_eq!(
        on_small, on_large,
        "restrict allocation count must not scale with oracle size"
    );
    assert!(
        on_small <= 16,
        "restrict made {on_small} allocations; expected a small constant"
    );
}
