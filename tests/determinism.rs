//! Reproducibility: every dataset builder and every algorithm must be
//! bit-deterministic for a fixed seed — the property that makes the
//! experiment binaries regenerate identical CSVs run over run.

use fair_submod::core::prelude::*;
use fair_submod::datasets::{
    adult_like, dblp_like, facebook_like, foursquare_like, rand_fl, rand_mc, AdultSize, City,
};
use fair_submod::influence::{monte_carlo_evaluate, DiffusionModel};

#[test]
fn graph_datasets_are_reproducible() {
    for build in [
        || rand_mc(2, 200, 7),
        || facebook_like(2, 7),
        || dblp_like(7),
    ] {
        let a = build();
        let b = build();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.groups.assignment(), b.groups.assignment());
    }
}

#[test]
fn fl_datasets_are_reproducible() {
    let builds: Vec<Box<dyn Fn() -> fair_submod::datasets::FlDataset>> = vec![
        Box::new(|| rand_fl(3, 9)),
        Box::new(|| adult_like(AdultSize::SmallRace, 9)),
        Box::new(|| foursquare_like(City::Tky, 9)),
    ];
    for build in builds {
        let a = build();
        let b = build();
        assert_eq!(a.users.point(0), b.users.point(0));
        assert_eq!(a.groups.assignment(), b.groups.assignment());
    }
}

#[test]
fn full_mc_pipeline_is_deterministic() {
    let run = || {
        let dataset = rand_mc(2, 200, 3);
        let oracle = dataset.coverage_oracle();
        let ts = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(5, 0.8));
        let bs = bsm_saturate(&oracle, &BsmSaturateConfig::new(5, 0.8));
        (ts.items, bs.items)
    };
    assert_eq!(run(), run());
}

#[test]
fn full_im_pipeline_is_deterministic() {
    let run = || {
        let dataset = rand_mc(2, 100, 4);
        let model = DiffusionModel::ic(0.1);
        let oracle = dataset.ris_oracle(model, 5_000, 21);
        let out = bsm_saturate(&oracle, &BsmSaturateConfig::new(5, 0.8));
        let eval =
            monte_carlo_evaluate(&dataset.graph, model, &dataset.groups, &out.items, 2_000, 9);
        (out.items, eval.f.to_bits(), eval.g.to_bits())
    };
    assert_eq!(run(), run());
}

#[test]
fn full_fl_pipeline_is_deterministic() {
    let run = || {
        let dataset = rand_fl(2, 5);
        let oracle = dataset.oracle();
        let out = bsm_saturate(&oracle, &BsmSaturateConfig::new(5, 0.8));
        (out.items, out.eval.f.to_bits())
    };
    assert_eq!(run(), run());
}
