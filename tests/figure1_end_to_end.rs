//! End-to-end integration test on the paper's running example
//! (Figure 1), spanning the coverage substrate, every algorithm, and
//! both exact solvers. Asserts the worked numbers of Examples 3.1, 4.1,
//! and 4.6.

use fair_submod::core::metrics::evaluate;
use fair_submod::core::prelude::*;
use fair_submod::coverage::{CoverageOracle, SetSystem};
use fair_submod::graphs::Groups;
use fair_submod::lp::bsm_ilp::{mc_bsm_optimal, mc_robust_ilp};
use fair_submod::lp::IlpConfig;

fn figure1() -> (CoverageOracle, SetSystem, Vec<u32>) {
    let sets = SetSystem::new(
        vec![
            vec![0, 1, 2, 3, 4],
            vec![5, 6, 7, 8],
            vec![5, 8, 9],
            vec![10, 11],
        ],
        12,
    );
    let mut group_of = vec![0u32; 12];
    for g in group_of.iter_mut().skip(9) {
        *g = 1;
    }
    let oracle = CoverageOracle::new(sets.clone(), &Groups::from_assignment(group_of.clone()));
    (oracle, sets, group_of)
}

#[test]
fn example_31_objective_values() {
    let (oracle, _, _) = figure1();
    let e12 = evaluate(&oracle, &[0, 1]);
    assert!((e12.f - 0.75).abs() < 1e-12);
    let e14 = evaluate(&oracle, &[0, 3]);
    assert!((e14.g - 5.0 / 9.0).abs() < 1e-12);
    let e13 = evaluate(&oracle, &[0, 2]);
    assert!((e13.f - 2.0 / 3.0).abs() < 1e-12);
    assert!((e13.g - 1.0 / 3.0).abs() < 1e-12);
}

#[test]
fn example_31_optimal_solutions_by_tau() {
    let (oracle, sets, group_of) = figure1();
    // Exact expectations from Example 3.1: τ=0 → {v1,v2};
    // 0 < τ ≤ 0.6 → {v1,v3}; 0.6 < τ ≤ 1 → {v1,v4}.
    let cases = [
        (0.0, vec![0, 1]),
        (0.3, vec![0, 2]),
        (0.6, vec![0, 2]),
        (0.7, vec![0, 3]),
        (1.0, vec![0, 3]),
    ];
    for (tau, expect) in cases {
        // Submodular branch-and-bound.
        let bb = branch_and_bound_bsm(&oracle, &ExactConfig::new(2, tau));
        let mut got = bb.items.clone();
        got.sort_unstable();
        assert_eq!(got, expect, "B&B at tau={tau}");
        // Independent ILP route.
        let ilp = mc_bsm_optimal(&sets, &group_of, 2, tau, &IlpConfig::default());
        let mut got = ilp.items.clone();
        got.sort_unstable();
        assert_eq!(got, expect, "ILP at tau={tau}");
        // Brute force.
        let bf = brute_force_bsm(&oracle, 2, tau);
        let mut got = bf.items.clone();
        got.sort_unstable();
        assert_eq!(got, expect, "brute force at tau={tau}");
    }
}

#[test]
fn example_41_tsgreedy_behaviour() {
    let (oracle, _, _) = figure1();
    // τ = 0.2: {v1, v3} without fallback.
    let out = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(2, 0.2));
    let mut items = out.items.clone();
    items.sort_unstable();
    assert_eq!(items, vec![0, 2]);
    assert!(!out.fell_back);
    // τ = 0.8: fallback to S_g = {v1, v4}.
    let out = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(2, 0.8));
    let mut items = out.items.clone();
    items.sort_unstable();
    assert_eq!(items, vec![0, 3]);
    assert!(out.fell_back);
}

#[test]
fn example_46_bsm_saturate_behaviour() {
    let (oracle, _, _) = figure1();
    for (tau, expect) in [(0.2, vec![0, 2]), (0.5, vec![0, 2]), (0.8, vec![0, 3])] {
        let cfg = BsmSaturateConfig::new(2, tau).with_epsilon(0.1);
        let out = bsm_saturate(&oracle, &cfg);
        let mut items = out.items.clone();
        items.sort_unstable();
        assert_eq!(items, expect, "tau = {tau}");
    }
}

#[test]
fn robust_ilp_matches_saturate_estimate() {
    let (oracle, sets, group_of) = figure1();
    let (ilp_opt_g, _, _, complete) = mc_robust_ilp(&sets, &group_of, 2, &IlpConfig::default());
    assert!(complete);
    let sat = saturate(&oracle, &SaturateConfig::new(2));
    // Saturate's exact tiny-instance path equals the ILP optimum.
    assert!((ilp_opt_g - sat.opt_g_estimate).abs() < 1e-6);
}
