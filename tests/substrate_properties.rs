//! Property-based tests for the substrates: graph generators, group
//! apportionment, RIS estimator unbiasedness, and the RIS oracle's
//! submodularity (the IM-side counterpart of `properties.rs`).

use proptest::prelude::*;

use fair_submod::core::system::{SolutionState, UtilitySystem};
use fair_submod::graphs::generators::{erdos_renyi, power_law_weights, sbm};
use fair_submod::graphs::{traversal, Groups};
use fair_submod::influence::oracle::{RisConfig, RisOracle};
use fair_submod::influence::DiffusionModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sbm_respects_block_sizes(a in 5usize..30, b in 5usize..30, seed in any::<u64>()) {
        let g = sbm(&[a, b], 0.3, 0.05, seed);
        prop_assert_eq!(g.num_nodes(), a + b);
        // Undirected: every arc has its reverse.
        for (u, v) in g.arcs() {
            prop_assert!(g.out_neighbors(v).contains(&u));
        }
    }

    #[test]
    fn erdos_renyi_edge_bounds(n in 2usize..40, seed in any::<u64>()) {
        let g = erdos_renyi(n, 0.5, seed);
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
        // No self loops.
        for (u, v) in g.arcs() {
            prop_assert_ne!(u, v);
        }
    }

    #[test]
    fn power_law_weights_are_positive_decreasing(n in 2usize..500, avg in 1.0f64..20.0) {
        let w = power_law_weights(n, avg, 2.5);
        prop_assert!(w.iter().all(|&x| x > 0.0));
        prop_assert!(w.windows(2).all(|p| p[0] >= p[1]));
        let mean = w.iter().sum::<f64>() / n as f64;
        prop_assert!((mean - avg).abs() < 1e-6);
    }

    #[test]
    fn group_ratios_partition_everyone(m in 4usize..200, r0 in 0.05f64..0.95, seed in any::<u64>()) {
        let groups = Groups::from_ratios(m, &[("a", r0), ("b", 1.0 - r0)], seed);
        prop_assert_eq!(groups.num_users(), m);
        prop_assert_eq!(groups.sizes().iter().sum::<usize>(), m);
        prop_assert!(groups.sizes().iter().all(|&s| s >= 1));
        // Assignment counts match sizes.
        let count0 = groups.assignment().iter().filter(|&&g| g == 0).count();
        prop_assert_eq!(count0, groups.sizes()[0]);
    }

    #[test]
    fn bfs_reaches_exactly_the_component(n in 3usize..30, p in 0.05f64..0.5, seed in any::<u64>()) {
        let g = erdos_renyi(n, p, seed);
        let comps = traversal::connected_components(&g);
        let order = traversal::bfs(&g, 0);
        let comp0 = comps.component_of[0];
        let expected = comps.component_of.iter().filter(|&&c| c == comp0).count();
        prop_assert_eq!(order.len(), expected);
    }

    #[test]
    fn ris_oracle_is_monotone_submodular(seed in any::<u64>(), p in 0.05f64..0.4) {
        let g = sbm(&[15, 15], 0.3, 0.1, seed);
        let groups = Groups::from_ratios(30, &[("a", 0.5), ("b", 0.5)], seed);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(p),
            &groups,
            &RisConfig::new(400, seed ^ 1),
        );
        let c = oracle.num_groups();
        let mut small = SolutionState::new(&oracle);
        let mut big = SolutionState::new(&oracle);
        big.insert(3);
        big.insert(7);
        let mut gs = vec![0.0; c];
        let mut gb = vec![0.0; c];
        for v in 0..30u32 {
            small.gains_into(v, &mut gs);
            big.gains_into(v, &mut gb);
            for i in 0..c {
                prop_assert!(gs[i] >= -1e-12, "negative gain");
                prop_assert!(gs[i] + 1e-9 >= gb[i], "submodularity violated");
            }
        }
    }

    #[test]
    fn ris_group_estimates_are_bounded(seed in any::<u64>()) {
        let g = sbm(&[10, 20], 0.3, 0.1, seed);
        let groups = Groups::from_ratios(30, &[("a", 1.0/3.0), ("b", 2.0/3.0)], seed);
        let oracle = RisOracle::generate(
            &g,
            DiffusionModel::ic(0.2),
            &groups,
            &RisConfig::new(300, seed ^ 2),
        );
        let all: Vec<u32> = (0..30).collect();
        let eval = fair_submod::core::metrics::evaluate(&oracle, &all);
        // Probabilities: f and every group mean in [0, 1].
        prop_assert!(eval.f <= 1.0 + 1e-9 && eval.f >= 0.0);
        for &gm in &eval.group_means {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&gm));
        }
        // Seeding everything covers every RR set: all means exactly 1.
        prop_assert!((eval.g - 1.0).abs() < 1e-9);
    }
}
