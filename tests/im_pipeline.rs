//! Integration of the IM pipeline: graph generation → RIS oracle →
//! BSM selection → Monte-Carlo evaluation, spanning the graphs,
//! influence, datasets, and core crates.

use fair_submod::core::metrics::evaluate;
use fair_submod::core::prelude::*;
use fair_submod::datasets::{rand_mc, seeds};
use fair_submod::influence::{monte_carlo_evaluate, DiffusionModel};

#[test]
fn ris_estimates_track_monte_carlo_on_rand() {
    let dataset = rand_mc(2, 100, seeds::RAND + 2);
    let model = DiffusionModel::ic(0.1);
    let oracle = dataset.ris_oracle(model, 30_000, 11);
    let f = MeanUtility::new(oracle.num_users());
    let run = greedy(&oracle, &f, &GreedyConfig::lazy(5));
    assert_eq!(run.items.len(), 5);
    let ris_eval = evaluate(&oracle, &run.items);
    let mc_eval = monte_carlo_evaluate(
        &dataset.graph,
        model,
        &dataset.groups,
        &run.items,
        20_000,
        5,
    );
    assert!(
        (ris_eval.f - mc_eval.f).abs() < 0.03,
        "RIS f {} vs MC f {}",
        ris_eval.f,
        mc_eval.f
    );
    assert!(
        (ris_eval.g - mc_eval.g).abs() < 0.05,
        "RIS g {} vs MC g {}",
        ris_eval.g,
        mc_eval.g
    );
}

#[test]
fn fair_seeds_improve_worst_group_spread() {
    // On the 20/80 SBM with sparse inter-block edges, fairness-aware
    // selection must serve the minority block better than classic IM
    // greedy (or match it when greedy is already fair).
    let dataset = rand_mc(2, 100, seeds::RAND + 2);
    let model = DiffusionModel::ic(0.1);
    let oracle = dataset.ris_oracle(model, 30_000, 13);
    let f = MeanUtility::new(oracle.num_users());
    let base = greedy(&oracle, &f, &GreedyConfig::lazy(5));
    let fair = bsm_saturate(&oracle, &BsmSaturateConfig::new(5, 0.9));
    let runs = 20_000;
    let base_eval =
        monte_carlo_evaluate(&dataset.graph, model, &dataset.groups, &base.items, runs, 7);
    let fair_eval =
        monte_carlo_evaluate(&dataset.graph, model, &dataset.groups, &fair.items, runs, 7);
    assert!(
        fair_eval.g + 0.02 >= base_eval.g,
        "fair g {} << greedy g {}",
        fair_eval.g,
        base_eval.g
    );
}

#[test]
fn tsgreedy_on_ris_returns_k_seeds_for_all_taus() {
    let dataset = rand_mc(4, 100, seeds::RAND + 3);
    let model = DiffusionModel::ic(0.1);
    let oracle = dataset.ris_oracle(model, 10_000, 17);
    for tau in [0.1, 0.5, 0.9] {
        let out = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(5, tau));
        assert_eq!(out.items.len(), 5, "tau {tau}");
        // Estimated (oracle-side) weak feasibility must hold exactly.
        let est = evaluate(&oracle, &out.items);
        assert!(
            est.g + 1e-9 >= tau * out.opt_g_estimate,
            "tau {tau}: estimated g {} < {}",
            est.g,
            tau * out.opt_g_estimate
        );
    }
}

#[test]
fn lt_model_pipeline_works_end_to_end() {
    let dataset = rand_mc(2, 100, seeds::RAND + 2);
    let model = DiffusionModel::LinearThreshold;
    let oracle = dataset.ris_oracle(model, 10_000, 23);
    let out = bsm_saturate(&oracle, &BsmSaturateConfig::new(5, 0.5));
    assert!(!out.items.is_empty());
    let eval = monte_carlo_evaluate(&dataset.graph, model, &dataset.groups, &out.items, 5_000, 3);
    assert!(eval.f > 0.0);
}
