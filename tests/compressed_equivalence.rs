//! Equivalence suite for the compressed RR arena (DESIGN.md §11): the
//! decode-on-scan compressed kernel must be **bit-identical** to the
//! retained flat-`u32`-arena twin ([`RisOracle::uncompressed_reference`])
//! and to the rescan kernel after *arbitrary* apply sequences — and the
//! zero-copy restricted views must satisfy the same triangle against
//! their own twins. Compression changes where bytes live, never which
//! items a solve picks or the bits of any gain (see DESIGN.md §11 for
//! the two-halves exactness argument: in-set order is unobservable
//! because decrements commute, and the kernel arithmetic is untouched).
//!
//! Greedy parity additionally pins `oracle_calls`: a decoded counter
//! update answers the same `group_gains` contract as a flat-arena read,
//! so both sides report identical call accounting on identical runs.

use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;

use fair_submod::core::prelude::*;
use fair_submod::core::system::UtilitySystem;
use fair_submod::datasets::{rand_mc, seeds};
use fair_submod::influence::oracle::RisOracle;
use fair_submod::influence::DiffusionModel;

/// Serializes tests that touch the process-global rayon override (same
/// rationale as `tests/parallel_equivalence.rs`).
fn thread_override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Restores the auto thread count when a test exits (even by panic).
struct RestoreThreads;
impl Drop for RestoreThreads {
    fn drop(&mut self) {
        rayon::set_num_threads(0);
    }
}

/// Shared oracle for the proptest cases (built once; the RIS build is
/// too expensive to repeat per generated case).
fn shared_ris() -> &'static RisOracle {
    static ORACLE: OnceLock<RisOracle> = OnceLock::new();
    ORACLE.get_or_init(|| {
        rand_mc(2, 120, seeds::RAND + 40).ris_oracle(DiffusionModel::ic(0.1), 3_000, 19)
    })
}

/// A zero-copy view over [`shared_ris`] (every third item), shared
/// across proptest cases like the root oracle.
fn shared_view() -> &'static RisOracle {
    static VIEW: OnceLock<RisOracle> = OnceLock::new();
    VIEW.get_or_init(|| {
        let members: Vec<ItemId> = (0..shared_ris().num_items() as ItemId).step_by(3).collect();
        shared_ris().restrict(&members).expect("valid members")
    })
}

/// Drives `fast` and `reference` through the same apply sequence,
/// asserting every per-item/per-group gain bit-identical at every
/// prefix (including the empty set) and after the full sequence.
fn assert_compressed_matches_reference<A, B>(fast: &A, reference: &B, applies: &[u32])
where
    A: UtilitySystem,
    B: UtilitySystem,
{
    assert_eq!(fast.num_items(), reference.num_items());
    let n = fast.num_items();
    let c = fast.num_groups();
    let mut fs = fast.init_inner();
    let mut rs = reference.init_inner();
    let mut fg = vec![0.0; c];
    let mut rg = vec![0.0; c];
    let check_all = |fs: &A::Inner, rs: &B::Inner, fg: &mut [f64], rg: &mut [f64], step: usize| {
        for v in 0..n as u32 {
            fast.group_gains(fs, v, fg);
            reference.group_gains(rs, v, rg);
            for g in 0..c {
                assert_eq!(
                    fg[g].to_bits(),
                    rg[g].to_bits(),
                    "gain diverged at step {step}, item {v}, group {g}: {} vs {}",
                    fg[g],
                    rg[g]
                );
            }
        }
    };
    check_all(&fs, &rs, &mut fg, &mut rg, 0);
    for (step, &v) in applies.iter().enumerate() {
        let v = v % n as u32;
        fast.apply(&mut fs, v);
        reference.apply(&mut rs, v);
        check_all(&fs, &rs, &mut fg, &mut rg, step + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compressed_matches_flat_arena_after_any_apply_sequence(
        applies in proptest::collection::vec(any::<u32>(), 0..12)
    ) {
        let oracle = shared_ris();
        assert_compressed_matches_reference(oracle, &oracle.uncompressed_reference(), &applies);
        // Transitivity double-check against the pre-incremental kernel.
        assert_compressed_matches_reference(oracle, &oracle.rescan_reference(), &applies);
    }

    #[test]
    fn restricted_view_matches_its_own_twins_after_any_apply_sequence(
        applies in proptest::collection::vec(any::<u32>(), 0..12)
    ) {
        // The view's flat twin filters + remaps the shared arena to
        // local ids; the triangle must close on the view exactly as it
        // does on the root.
        let view = shared_view();
        assert_compressed_matches_reference(view, &view.uncompressed_reference(), &applies);
        assert_compressed_matches_reference(view, &view.rescan_reference(), &applies);
    }
}

/// Greedy over the compressed kernel vs greedy over the flat-arena
/// twin: same items, same value bits, same oracle-call accounting —
/// for both variants, so decode-on-scan counts exactly like the flat
/// path it replaced.
fn assert_greedy_parity<A: UtilitySystem, B: UtilitySystem>(fast: &A, reference: &B, k: usize) {
    let f = MeanUtility::new(fast.num_users());
    for cfg in [GreedyConfig::naive(k), GreedyConfig::lazy(k)] {
        let a = greedy(fast, &f, &cfg);
        let b = greedy(reference, &f, &cfg);
        assert_eq!(a.items, b.items, "selection diverged ({cfg:?})");
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "objective diverged ({cfg:?})"
        );
        assert_eq!(
            a.oracle_calls, b.oracle_calls,
            "compressed-kernel call accounting diverged from flat ({cfg:?})"
        );
    }
}

/// Both greedy variants, several seeds, thread counts 1 and 4: the
/// compressed oracle and its flat twin must agree item-for-item and
/// bit-for-bit regardless of how gain batches are scheduled.
#[test]
fn greedy_runs_identically_on_compressed_and_flat_arenas() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    for seed in [1u64, 2, 3] {
        let oracle =
            rand_mc(2, 100, seeds::RAND + 50 + seed).ris_oracle(DiffusionModel::ic(0.12), 2_000, 7);
        let flat = oracle.uncompressed_reference();
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            assert_greedy_parity(&oracle, &flat, 6);
        }
    }
}

/// The restricted view solves like a materialized shard would: greedy
/// over the view equals greedy over the view's own flat twin.
#[test]
fn greedy_runs_identically_on_view_and_its_flat_twin() {
    let view = shared_view();
    assert_greedy_parity(view, &view.uncompressed_reference(), 6);
    // Restrict-of-restrict composes member lists; the triangle must
    // still close one level down.
    let nested_members: Vec<ItemId> = (0..view.num_items() as ItemId).step_by(2).collect();
    let nested = view.restrict(&nested_members).expect("valid members");
    assert_greedy_parity(&nested, &nested.uncompressed_reference(), 4);
}

/// Compression must actually compress: the encoded payload stays below
/// the flat arena's 4 bytes/node on a realistic sample.
#[test]
fn compressed_arena_is_smaller_than_flat() {
    let oracle = shared_ris();
    assert!(oracle.arena_len() > 0);
    assert!(
        oracle.arena_bytes() < oracle.arena_len() * 4,
        "compressed {} B >= flat {} B",
        oracle.arena_bytes(),
        oracle.arena_len() * 4
    );
}

/// The registry stamps the kernel labels: compressed oracle reports
/// `compressed_counters`, the flat twin keeps `incremental_counters`.
#[test]
fn reports_carry_the_compressed_kernel_label() {
    let registry = SolverRegistry::default();
    let params = ScenarioParams::new(4, 0.8);
    let oracle = shared_ris();
    let report = registry.solve("Greedy", oracle, &params).unwrap();
    assert_eq!(report.gain_kernel, "compressed_counters");
    let flat = oracle.uncompressed_reference();
    let report = registry.solve("Greedy", &flat, &params).unwrap();
    assert_eq!(report.gain_kernel, "incremental_counters");
}
