//! Equivalence suite for the parallel / batched / packed hot paths: on
//! seeded RAND instances of every substrate, the optimized paths must
//! produce **bit-identical values and identical selected sets** to the
//! sequential reference implementations, for any worker-thread count.
//!
//! The thread-count sweeps here use the rayon shim's runtime override
//! ([`rayon::set_num_threads`]), serialized through a shared lock so
//! concurrent tests cannot perturb each other's configured counts. CI
//! additionally re-runs this suite under `RAYON_NUM_THREADS=1`, which
//! pins the tests that *don't* override (the in-test override takes
//! precedence over the environment variable for the ones that do).

use std::sync::{Mutex, MutexGuard, OnceLock};

use fair_submod::core::prelude::*;
use fair_submod::core::system::{SolutionState, UtilitySystem};
use fair_submod::datasets::{rand_fl, rand_mc, seeds};
use fair_submod::facility::BenefitMatrix;
use fair_submod::influence::oracle::{RisConfig, RisOracle};
use fair_submod::influence::{monte_carlo_evaluate, DiffusionModel};

/// `rayon::set_num_threads` is a process-global override, and the test
/// harness runs `#[test]`s concurrently — without serialization, one
/// test's "sequential" run could silently execute at another test's
/// thread count and this suite would stop exercising the configurations
/// it claims to compare. Every test that touches the override holds
/// this guard for its whole body (and restores the default on drop).
fn thread_override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Restores the auto thread count when a test exits (even by panic).
struct RestoreThreads;
impl Drop for RestoreThreads {
    fn drop(&mut self) {
        rayon::set_num_threads(0);
    }
}

/// Batch rows must equal per-item `group_gains` bit-for-bit.
fn assert_batch_matches_per_item<S: UtilitySystem>(system: &S, grown: &[u32]) {
    let c = system.num_groups();
    let n = system.num_items();
    let mut state = SolutionState::new(system);
    state.insert_all(grown);
    let items: Vec<u32> = (0..n as u32).collect();
    let mut batch = vec![0.0; n * c];
    state.gains_batch_into(&items, &mut batch);
    let mut row = vec![0.0; c];
    for (j, &v) in items.iter().enumerate() {
        state.gains_into(v, &mut row);
        for g in 0..c {
            assert_eq!(
                batch[j * c + g].to_bits(),
                row[g].to_bits(),
                "batch row diverged: item {v}, group {g}"
            );
        }
    }
}

#[test]
fn batch_gains_match_per_item_on_every_substrate() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    let mc = rand_mc(2, 300, seeds::RAND);
    let coverage = mc.coverage_oracle();
    let ris = mc.ris_oracle(DiffusionModel::ic(0.1), 3_000, 7);
    let fl = rand_fl(3, seeds::FL);
    let facility = fl.oracle();
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        assert_batch_matches_per_item(&coverage, &[0, 11, 42]);
        assert_batch_matches_per_item(&ris, &[3, 77]);
        assert_batch_matches_per_item(&facility, &[1, 19]);
    }
}

/// The seed per-item naive greedy, retained as the reference the
/// batched implementation must reproduce exactly.
fn reference_naive_greedy<S: UtilitySystem, A: Aggregate>(
    system: &S,
    aggregate: &A,
    k: usize,
) -> (Vec<u32>, f64, u64) {
    let n = system.num_items();
    let mut state = SolutionState::new(system);
    let mut value = state.value(aggregate);
    while state.len() < k {
        let mut best: Option<(f64, u32)> = None;
        for v in 0..n as u32 {
            if state.contains(v) {
                continue;
            }
            let gain = state.gain(aggregate, v);
            let better = match best {
                None => true,
                Some((bg, _)) => gain > bg + 1e-15,
            };
            if better {
                best = Some((gain, v));
            }
        }
        match best {
            Some((gain, v)) if gain > 1e-15 => {
                state.insert(v);
                value = state.value(aggregate);
            }
            _ => break,
        }
    }
    (state.items().to_vec(), value, state.oracle_calls())
}

#[test]
fn batched_naive_greedy_equals_per_item_reference() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    let mc = rand_mc(2, 300, seeds::RAND + 3);
    let coverage = mc.coverage_oracle();
    let fl = rand_fl(2, seeds::FL + 1);
    let facility = fl.oracle();

    fn check<S: UtilitySystem>(system: &S, k: usize) {
        let f = MeanUtility::new(system.num_users());
        let (ref_items, ref_value, ref_calls) = reference_naive_greedy(system, &f, k);
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            let run = greedy(system, &f, &GreedyConfig::naive(k));
            assert_eq!(run.items, ref_items, "{threads} threads");
            assert_eq!(
                run.value.to_bits(),
                ref_value.to_bits(),
                "{threads} threads"
            );
            assert_eq!(run.oracle_calls, ref_calls, "{threads} threads");
        }
    }
    check(&coverage, 8);
    check(&facility, 6);
}

#[test]
fn packed_coverage_kernel_selects_identically_to_vec_bool() {
    let mc = rand_mc(4, 400, seeds::RAND + 4);
    let packed = mc.coverage_oracle();
    let unpacked = packed.unpacked_reference();
    let f = MeanUtility::new(packed.num_users());
    for cfg in [GreedyConfig::naive(10), GreedyConfig::lazy(10)] {
        let a = greedy(&packed, &f, &cfg);
        let b = greedy(&unpacked, &f, &cfg);
        assert_eq!(a.items, b.items);
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.oracle_calls, b.oracle_calls);
    }
    let sat_a = saturate(&packed, &SaturateConfig::new(6).approximate_only());
    let sat_b = saturate(&unpacked, &SaturateConfig::new(6).approximate_only());
    assert_eq!(sat_a.items, sat_b.items);
    assert_eq!(
        sat_a.opt_g_estimate.to_bits(),
        sat_b.opt_g_estimate.to_bits()
    );
}

#[test]
fn end_to_end_solvers_are_thread_count_invariant() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    let mc = rand_mc(2, 250, seeds::RAND + 5);
    let oracle = mc.coverage_oracle();
    let run_all = || {
        let ts = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(6, 0.8));
        let bs = bsm_saturate(&oracle, &BsmSaturateConfig::new(6, 0.8));
        (ts.items, ts.eval.f.to_bits(), bs.items, bs.eval.f.to_bits())
    };
    rayon::set_num_threads(1);
    let seq = run_all();
    rayon::set_num_threads(4);
    let par = run_all();
    assert_eq!(seq, par);
}

#[test]
fn ris_sampling_and_monte_carlo_are_thread_count_invariant() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    let mc = rand_mc(2, 150, seeds::RAND + 6);
    let model = DiffusionModel::ic(0.1);
    let run_all = || {
        let oracle = RisOracle::generate(&mc.graph, model, &mc.groups, &RisConfig::new(2_000, 31));
        let f = MeanUtility::new(oracle.num_users());
        let sel = greedy(&oracle, &f, &GreedyConfig::lazy(5));
        let eval = monte_carlo_evaluate(&mc.graph, model, &mc.groups, &sel.items, 1_000, 17);
        (sel.items, eval.f.to_bits(), eval.g.to_bits())
    };
    rayon::set_num_threads(1);
    let seq = run_all();
    rayon::set_num_threads(5);
    let par = run_all();
    assert_eq!(seq, par);
}

#[test]
fn benefit_matrix_is_thread_count_invariant() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    let fl = rand_fl(2, seeds::FL + 2);
    rayon::set_num_threads(1);
    let seq = BenefitMatrix::rbf(&fl.users, &fl.items);
    rayon::set_num_threads(4);
    let par = BenefitMatrix::rbf(&fl.users, &fl.items);
    assert_eq!(seq.num_users(), par.num_users());
    for u in 0..seq.num_users() {
        let (a, b) = (seq.row(u), par.row(u));
        assert!(
            a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "row {u} diverged"
        );
    }
}
