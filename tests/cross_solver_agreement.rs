//! Cross-validation of the three exact solvers — brute force, submodular
//! branch-and-bound, and the Appendix-A ILP — on random MC and FL
//! instances. Any disagreement indicates a bug in one of them; they are
//! implemented independently (combinatorial vs simplex-based).

use fair_submod::core::prelude::*;
use fair_submod::coverage::{CoverageOracle, SetSystem};
use fair_submod::facility::{BenefitMatrix, FacilityOracle};
use fair_submod::graphs::Groups;
use fair_submod::lp::bsm_ilp::{fl_bsm_optimal, mc_bsm_optimal};
use fair_submod::lp::IlpConfig;

/// Small deterministic PRNG for instance generation.
struct Xorshift(u64);

impl Xorshift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_range(&mut self, hi: usize) -> usize {
        (self.next_f64() * hi as f64) as usize % hi
    }
}

fn random_mc_instance(seed: u64, n: usize, m: usize, c: usize) -> (SetSystem, Vec<u32>) {
    let mut rng = Xorshift(seed | 1);
    let sets: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            let size = 1 + rng.next_range(m / 2);
            (0..size).map(|_| rng.next_range(m) as u32).collect()
        })
        .collect();
    let group_of: Vec<u32> = (0..m).map(|u| (u % c) as u32).collect();
    (SetSystem::new(sets, m), group_of)
}

#[test]
fn mc_ilp_agrees_with_branch_and_bound_and_brute_force() {
    for seed in 1..6u64 {
        let (sets, group_of) = random_mc_instance(seed, 9, 18, 2);
        let oracle = CoverageOracle::new(sets.clone(), &Groups::from_assignment(group_of.clone()));
        for tau in [0.0, 0.5, 1.0] {
            let bf = brute_force_bsm(&oracle, 3, tau);
            let bb = branch_and_bound_bsm(&oracle, &ExactConfig::new(3, tau));
            let ilp = mc_bsm_optimal(&sets, &group_of, 3, tau, &IlpConfig::default());
            assert!(bb.complete && ilp.complete, "seed {seed} tau {tau}");
            assert!(
                (bf.opt_g - bb.opt_g).abs() < 1e-6,
                "seed {seed} tau {tau}: OPT_g bf {} vs bb {}",
                bf.opt_g,
                bb.opt_g
            );
            assert!(
                (bf.opt_g - ilp.opt_g).abs() < 1e-6,
                "seed {seed} tau {tau}: OPT_g bf {} vs ilp {}",
                bf.opt_g,
                ilp.opt_g
            );
            assert!(
                (bf.eval.f - bb.eval.f).abs() < 1e-6,
                "seed {seed} tau {tau}: f bf {} vs bb {}",
                bf.eval.f,
                bb.eval.f
            );
            assert!(
                (bf.eval.f - ilp.f_value).abs() < 1e-5,
                "seed {seed} tau {tau}: f bf {} vs ilp {}",
                bf.eval.f,
                ilp.f_value
            );
        }
    }
}

#[test]
fn fl_ilp_agrees_with_branch_and_bound_and_brute_force() {
    for seed in 1..5u64 {
        let mut rng = Xorshift(seed.wrapping_mul(77) | 1);
        let m = 8;
        let n = 6;
        let b: Vec<f64> = (0..m * n).map(|_| rng.next_f64()).collect();
        let benefits = BenefitMatrix::new(b, m, n);
        let group_of: Vec<u32> = (0..m).map(|u| (u % 2) as u32).collect();
        let oracle = FacilityOracle::new(benefits.clone(), group_of.clone());
        for tau in [0.0, 0.6, 1.0] {
            let bf = brute_force_bsm(&oracle, 2, tau);
            let bb = branch_and_bound_bsm(&oracle, &ExactConfig::new(2, tau));
            let ilp = fl_bsm_optimal(&benefits, &group_of, 2, tau, &IlpConfig::default());
            assert!(
                (bf.opt_g - bb.opt_g).abs() < 1e-6,
                "seed {seed} tau {tau}: OPT_g {} vs {}",
                bf.opt_g,
                bb.opt_g
            );
            assert!(
                (bf.opt_g - ilp.opt_g).abs() < 1e-5,
                "seed {seed} tau {tau}: OPT_g {} vs ilp {}",
                bf.opt_g,
                ilp.opt_g
            );
            assert!(
                (bf.eval.f - bb.eval.f).abs() < 1e-6,
                "seed {seed} tau {tau}: f {} vs {}",
                bf.eval.f,
                bb.eval.f
            );
            assert!(
                (bf.eval.f - ilp.f_value).abs() < 1e-5,
                "seed {seed} tau {tau}: f {} vs ilp {}",
                bf.eval.f,
                ilp.f_value
            );
        }
    }
}

#[test]
fn approximate_algorithms_never_beat_the_feasible_optimum() {
    for seed in 10..14u64 {
        let (sets, group_of) = random_mc_instance(seed, 10, 20, 2);
        let oracle = CoverageOracle::new(sets, &Groups::from_assignment(group_of));
        let tau = 0.7;
        let opt = brute_force_bsm(&oracle, 3, tau);
        for out in [
            bsm_tsgreedy(&oracle, &TsGreedyConfig::new(3, tau)),
            bsm_saturate(&oracle, &BsmSaturateConfig::new(3, tau)),
        ] {
            if out.eval.g >= tau * opt.opt_g - 1e-9 {
                assert!(
                    out.eval.f <= opt.eval.f + 1e-9,
                    "seed {seed}: feasible approx beat the optimum"
                );
            }
        }
    }
}
