//! Cross-validation of the three exact solvers — brute force, submodular
//! branch-and-bound, and the Appendix-A ILP — on random MC and FL
//! instances. Any disagreement indicates a bug in one of them; they are
//! implemented independently (combinatorial vs simplex-based).
//!
//! The second half iterates the *full* `SolverRegistry` generically:
//! every registered solver must respect the budget `k`, report
//! non-negative per-group utilities, and be deterministic across two
//! runs — invariants that hold for any present or future registry
//! entry, so new solvers are covered the moment they register.

use fair_submod::core::engine::SessionStatus;
use fair_submod::core::prelude::*;
use fair_submod::coverage::{CoverageOracle, SetSystem};
use fair_submod::facility::{BenefitMatrix, FacilityOracle};
use fair_submod::graphs::Groups;
use fair_submod::lp::bsm_ilp::{fl_bsm_optimal, mc_bsm_optimal};
use fair_submod::lp::IlpConfig;
use serde::json::Value;
use serde::ToJson;

/// Small deterministic PRNG for instance generation.
struct Xorshift(u64);

impl Xorshift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_range(&mut self, hi: usize) -> usize {
        (self.next_f64() * hi as f64) as usize % hi
    }
}

fn random_mc_instance(seed: u64, n: usize, m: usize, c: usize) -> (SetSystem, Vec<u32>) {
    let mut rng = Xorshift(seed | 1);
    let sets: Vec<Vec<u32>> = (0..n)
        .map(|_| {
            let size = 1 + rng.next_range(m / 2);
            (0..size).map(|_| rng.next_range(m) as u32).collect()
        })
        .collect();
    let group_of: Vec<u32> = (0..m).map(|u| (u % c) as u32).collect();
    (SetSystem::new(sets, m), group_of)
}

#[test]
fn mc_ilp_agrees_with_branch_and_bound_and_brute_force() {
    for seed in 1..6u64 {
        let (sets, group_of) = random_mc_instance(seed, 9, 18, 2);
        let oracle = CoverageOracle::new(sets.clone(), &Groups::from_assignment(group_of.clone()));
        for tau in [0.0, 0.5, 1.0] {
            let bf = brute_force_bsm(&oracle, 3, tau);
            let bb = branch_and_bound_bsm(&oracle, &ExactConfig::new(3, tau));
            let ilp = mc_bsm_optimal(&sets, &group_of, 3, tau, &IlpConfig::default());
            assert!(bb.complete && ilp.complete, "seed {seed} tau {tau}");
            assert!(
                (bf.opt_g - bb.opt_g).abs() < 1e-6,
                "seed {seed} tau {tau}: OPT_g bf {} vs bb {}",
                bf.opt_g,
                bb.opt_g
            );
            assert!(
                (bf.opt_g - ilp.opt_g).abs() < 1e-6,
                "seed {seed} tau {tau}: OPT_g bf {} vs ilp {}",
                bf.opt_g,
                ilp.opt_g
            );
            assert!(
                (bf.eval.f - bb.eval.f).abs() < 1e-6,
                "seed {seed} tau {tau}: f bf {} vs bb {}",
                bf.eval.f,
                bb.eval.f
            );
            assert!(
                (bf.eval.f - ilp.f_value).abs() < 1e-5,
                "seed {seed} tau {tau}: f bf {} vs ilp {}",
                bf.eval.f,
                ilp.f_value
            );
        }
    }
}

#[test]
fn fl_ilp_agrees_with_branch_and_bound_and_brute_force() {
    for seed in 1..5u64 {
        let mut rng = Xorshift(seed.wrapping_mul(77) | 1);
        let m = 8;
        let n = 6;
        let b: Vec<f64> = (0..m * n).map(|_| rng.next_f64()).collect();
        let benefits = BenefitMatrix::new(b, m, n);
        let group_of: Vec<u32> = (0..m).map(|u| (u % 2) as u32).collect();
        let oracle = FacilityOracle::new(benefits.clone(), group_of.clone());
        for tau in [0.0, 0.6, 1.0] {
            let bf = brute_force_bsm(&oracle, 2, tau);
            let bb = branch_and_bound_bsm(&oracle, &ExactConfig::new(2, tau));
            let ilp = fl_bsm_optimal(&benefits, &group_of, 2, tau, &IlpConfig::default());
            assert!(
                (bf.opt_g - bb.opt_g).abs() < 1e-6,
                "seed {seed} tau {tau}: OPT_g {} vs {}",
                bf.opt_g,
                bb.opt_g
            );
            assert!(
                (bf.opt_g - ilp.opt_g).abs() < 1e-5,
                "seed {seed} tau {tau}: OPT_g {} vs ilp {}",
                bf.opt_g,
                ilp.opt_g
            );
            assert!(
                (bf.eval.f - bb.eval.f).abs() < 1e-6,
                "seed {seed} tau {tau}: f {} vs {}",
                bf.eval.f,
                bb.eval.f
            );
            assert!(
                (bf.eval.f - ilp.f_value).abs() < 1e-5,
                "seed {seed} tau {tau}: f {} vs ilp {}",
                bf.eval.f,
                ilp.f_value
            );
        }
    }
}

#[test]
fn approximate_algorithms_never_beat_the_feasible_optimum() {
    for seed in 10..14u64 {
        let (sets, group_of) = random_mc_instance(seed, 10, 20, 2);
        let oracle = CoverageOracle::new(sets, &Groups::from_assignment(group_of));
        let tau = 0.7;
        let opt = brute_force_bsm(&oracle, 3, tau);
        for out in [
            bsm_tsgreedy(&oracle, &TsGreedyConfig::new(3, tau)),
            bsm_saturate(&oracle, &BsmSaturateConfig::new(3, tau)),
        ] {
            if out.eval.g >= tau * opt.opt_g - 1e-9 {
                assert!(
                    out.eval.f <= opt.eval.f + 1e-9,
                    "seed {seed}: feasible approx beat the optimum"
                );
            }
        }
    }
}

// ── Registry-generic invariants over the whole solver suite. ─────────

/// Every registered solver on a two-group coverage instance: respects
/// the budget `k`, returns non-negative group utilities of the right
/// arity, and is deterministic across two runs.
#[test]
fn every_registered_solver_respects_budget_and_is_deterministic() {
    let (sets, group_of) = random_mc_instance(3, 12, 24, 2);
    let oracle = CoverageOracle::new(sets, &Groups::from_assignment(group_of));
    let registry = SolverRegistry::default();
    let k = 3;
    let params = ScenarioParams::new(k, 0.5);
    for name in registry.names() {
        let first = registry
            .solve(name, &oracle, &params)
            .unwrap_or_else(|e| panic!("{name} rejected a c=2 instance: {e}"));
        assert!(
            first.items.len() <= k,
            "{name} returned {} items for k = {k}",
            first.items.len()
        );
        assert_eq!(
            first.group_utilities.len(),
            2,
            "{name} reported wrong group arity"
        );
        assert!(
            first.group_utilities.iter().all(|&x| x >= 0.0),
            "{name} reported a negative group utility: {:?}",
            first.group_utilities
        );
        assert!(
            first.f >= 0.0 && first.g >= 0.0,
            "{name}: f = {}, g = {}",
            first.f,
            first.g
        );
        assert!(first.solver == name, "{name} mislabeled its report");

        let second = registry
            .solve(name, &oracle, &params)
            .unwrap_or_else(|e| panic!("{name} second run rejected: {e}"));
        assert_eq!(first.items, second.items, "{name} is non-deterministic");
        assert_eq!(
            first.f.to_bits(),
            second.f.to_bits(),
            "{name} f drifted across runs"
        );
        assert_eq!(
            first.g.to_bits(),
            second.g.to_bits(),
            "{name} g drifted across runs"
        );
    }
}

/// The only acceptable failures on a three-group instance are typed
/// capability rejections (SMSC's two-group requirement); everything
/// else must still run and keep the same invariants.
#[test]
fn registry_capability_gaps_are_typed_on_three_groups() {
    let (sets, group_of) = random_mc_instance(7, 12, 24, 3);
    let oracle = CoverageOracle::new(sets, &Groups::from_assignment(group_of));
    let registry = SolverRegistry::default();
    let params = ScenarioParams::new(3, 0.5);
    for name in registry.names() {
        match registry.solve(name, &oracle, &params) {
            Ok(report) => {
                assert!(report.items.len() <= 3, "{name} ignored the budget");
                assert_eq!(report.group_utilities.len(), 3);
            }
            Err(SolverError::UnsupportedGroupCount {
                solver,
                required,
                got,
            }) => {
                assert_eq!(solver, "SMSC");
                assert_eq!((required, got), (2, 3));
                assert_eq!(name, "SMSC");
            }
            Err(other) => panic!("{name} failed unexpectedly: {other}"),
        }
    }
}

/// The scale capability flags gate behaviour generically — no solver
/// names appear below, so any future registry entry that declares
/// `sharded` or `streaming` is held to the same contract the moment it
/// registers:
///
/// - solvers that do NOT declare `sharded` must ignore the shard axis
///   (bit-identical reports for different `params.shards`);
/// - solvers that DO declare it must accept every shard count ≥ 1,
///   deterministically, and their native sessions run one step per
///   shard plus a merge;
/// - streaming solvers' native sessions consume one arrival per step —
///   exactly `n` steps to completion.
#[test]
fn capability_flags_gate_scale_behaviour_generically() {
    let (sets, group_of) = random_mc_instance(5, 14, 28, 2);
    let oracle = CoverageOracle::new(sets, &Groups::from_assignment(group_of));
    let n = oracle.dyn_num_items();
    let registry = SolverRegistry::default();
    let strip = |mut r: SolveReport| {
        r.seconds = 0.0;
        r
    };
    for name in registry.names() {
        let caps = registry.get(name).unwrap().capabilities();
        let mut params = ScenarioParams::new(3, 0.5).with_seed(13);
        if caps.sharded {
            for shards in [1usize, 2, 4] {
                params.shards = shards;
                let a = strip(registry.solve(name, &oracle, &params).unwrap());
                let b = strip(registry.solve(name, &oracle, &params).unwrap());
                assert_eq!(a, b, "{name} non-deterministic at p={shards}");
                assert!(a.items.len() <= params.k, "{name} over budget");
            }
            if caps.resumable {
                params.shards = 3;
                let mut session = registry.open_session(name, &oracle, &params).unwrap();
                let mut steps = 0usize;
                while session.step(&oracle) == SessionStatus::Running {
                    steps += 1;
                }
                steps += 1;
                assert_eq!(
                    steps,
                    params.shards + 1,
                    "{name}: sharded sessions step once per shard plus a merge"
                );
            }
        } else {
            params.shards = 3;
            let a = strip(registry.solve(name, &oracle, &params).unwrap());
            params.shards = 7;
            let b = strip(registry.solve(name, &oracle, &params).unwrap());
            assert_eq!(a, b, "{name} read the shard axis without declaring sharded");
        }
        if caps.streaming && caps.resumable {
            let params = ScenarioParams::new(3, 0.5).with_seed(13);
            let mut session = registry.open_session(name, &oracle, &params).unwrap();
            let mut steps = 0usize;
            while session.step(&oracle) == SessionStatus::Running {
                steps += 1;
            }
            steps += 1;
            assert_eq!(
                steps, n,
                "{name}: streaming sessions consume one arrival per step"
            );
        }
    }
}

/// Every solver's capability flags round-trip through the JSON surface
/// the service layer publishes — so a new flag (like `sharded` or
/// `streaming`) is picked up by clients without per-solver wiring.
#[test]
fn capability_flags_serialize_for_every_solver() {
    let registry = SolverRegistry::default();
    for name in registry.names() {
        let caps = registry.get(name).unwrap().capabilities();
        let json = caps.to_json();
        for (key, value) in [
            ("requires_two_groups", caps.requires_two_groups),
            ("exact", caps.exact),
            ("randomized", caps.randomized),
            ("uses_tau", caps.uses_tau),
            ("resumable", caps.resumable),
            ("prefix_exact", caps.prefix_exact),
            ("sharded", caps.sharded),
            ("streaming", caps.streaming),
        ] {
            assert_eq!(
                json.get(key).and_then(Value::as_bool),
                Some(value),
                "{name}: flag {key} missing or wrong in the JSON surface"
            );
        }
    }
}

/// Weak feasibility holds for the fairness-aware solvers on exact
/// oracles, reported uniformly through the engine.
#[test]
fn registry_fairness_solvers_are_weakly_feasible_on_exact_oracles() {
    let (sets, group_of) = random_mc_instance(11, 14, 30, 2);
    let oracle = CoverageOracle::new(sets, &Groups::from_assignment(group_of));
    let registry = SolverRegistry::default();
    for tau in [0.3, 0.7] {
        let params = ScenarioParams::new(3, tau);
        let ts = registry.solve("BSM-TSGreedy", &oracle, &params).unwrap();
        assert!(ts.weakly_feasible(), "TSGreedy broke the weak constraint");
        let ls = registry.solve("LocalSearch", &oracle, &params).unwrap();
        assert!(
            ls.g + 1e-9 >= tau * ls.opt_g_estimate - 1e-9,
            "LocalSearch refinement broke the fairness floor"
        );
        assert!(ls.f + 1e-9 >= ts.f, "refinement lost utility");
    }
}
