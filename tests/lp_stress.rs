//! Stress tests for the LP/ILP substrate: random knapsack and covering
//! integer programs solved by branch-and-bound and checked against
//! exhaustive enumeration, plus LP duality-style sanity (relaxation
//! bounds the integer optimum).

use fair_submod::lp::{solve_ilp, solve_lp, Cmp, IlpConfig, IlpResult, LinearProgram, LpResult};

struct Xorshift(u64);

impl Xorshift {
    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Enumerates all 0/1 assignments of `n ≤ 20` binaries and returns the
/// best feasible objective.
fn brute_force_binary(lp: &LinearProgram, n: usize) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n)
            .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
            .collect();
        if lp.is_feasible(&x, 1e-9) {
            let v = lp.objective_value(&x);
            if best.is_none_or(|b| v > b) {
                best = Some(v);
            }
        }
    }
    best
}

fn random_knapsack(seed: u64, n: usize) -> (LinearProgram, Vec<usize>) {
    let mut rng = Xorshift(seed | 1);
    let mut lp = LinearProgram::new();
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        let v = lp.add_var(0.1 + rng.next_f64());
        lp.bound_upper(v, 1.0);
        weights.push(0.1 + rng.next_f64());
    }
    let cap: f64 = weights.iter().sum::<f64>() * (0.3 + 0.4 * rng.next_f64());
    lp.add_constraint(weights.iter().cloned().enumerate().collect(), Cmp::Le, cap);
    (lp, (0..n).collect())
}

#[test]
fn ilp_matches_brute_force_on_random_knapsacks() {
    for seed in 1..16u64 {
        let n = 10;
        let (lp, bins) = random_knapsack(seed, n);
        let expected = brute_force_binary(&lp, n).expect("x = 0 is always feasible");
        match solve_ilp(&lp, &bins, &IlpConfig::default()) {
            IlpResult::Optimal { value, .. } => {
                assert!(
                    (value - expected).abs() < 1e-6,
                    "seed {seed}: ilp {value} vs brute {expected}"
                );
            }
            other => panic!("seed {seed}: unexpected {other:?}"),
        }
    }
}

#[test]
fn lp_relaxation_upper_bounds_the_ilp() {
    for seed in 20..30u64 {
        let (lp, bins) = random_knapsack(seed, 8);
        let relax = match solve_lp(&lp) {
            LpResult::Optimal { value, .. } => value,
            other => panic!("unexpected {other:?}"),
        };
        let integral = match solve_ilp(&lp, &bins, &IlpConfig::default()) {
            IlpResult::Optimal { value, .. } => value,
            other => panic!("unexpected {other:?}"),
        };
        assert!(
            relax + 1e-7 >= integral,
            "seed {seed}: relaxation {relax} below ILP {integral}"
        );
    }
}

#[test]
fn covering_ilp_with_equalities() {
    // Random set-cover-ish programs: minimize (= maximize negative) cost
    // subject to each of 6 elements covered; compare to brute force.
    for seed in 40..46u64 {
        let mut rng = Xorshift(seed | 1);
        let n = 8;
        let m = 6;
        let mut lp = LinearProgram::new();
        for _ in 0..n {
            let v = lp.add_var(-(0.2 + rng.next_f64())); // maximize −cost
            lp.bound_upper(v, 1.0);
        }
        // Membership matrix: each element covered by ~half the sets, and
        // guaranteed by set `e % n`.
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        for (e, row) in rows.iter_mut().enumerate() {
            for s in 0..n {
                if s == e % n || rng.next_f64() < 0.4 {
                    row.push((s, 1.0));
                }
            }
        }
        for row in rows {
            lp.add_constraint(row, Cmp::Ge, 1.0);
        }
        let bins: Vec<usize> = (0..n).collect();
        let expected = brute_force_binary(&lp, n);
        match (solve_ilp(&lp, &bins, &IlpConfig::default()), expected) {
            (IlpResult::Optimal { value, .. }, Some(exp)) => {
                assert!((value - exp).abs() < 1e-6, "seed {seed}: {value} vs {exp}");
            }
            (IlpResult::Infeasible, None) => {}
            (got, exp) => panic!("seed {seed}: {got:?} vs {exp:?}"),
        }
    }
}

#[test]
fn degenerate_equality_chains_terminate() {
    // x0 = x1 = … = x5, all ≤ 1, maximize Σx: optimum is 6 at all-ones.
    let mut lp = LinearProgram::new();
    for _ in 0..6 {
        let v = lp.add_var(1.0);
        lp.bound_upper(v, 1.0);
    }
    for i in 0..5 {
        lp.add_constraint(vec![(i, 1.0), (i + 1, -1.0)], Cmp::Eq, 0.0);
    }
    match solve_lp(&lp) {
        LpResult::Optimal { value, x } => {
            assert!((value - 6.0).abs() < 1e-7);
            assert!(x.iter().all(|&v| (v - 1.0).abs() < 1e-7));
        }
        other => panic!("unexpected {other:?}"),
    }
}
