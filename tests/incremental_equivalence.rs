//! Equivalence suite for the PR-7 kernel pass (DESIGN.md §9): the
//! incremental gain kernels must be **bit-identical** to the retained
//! rescan references after *arbitrary* apply sequences, and CELF (lazy
//! greedy with batched stale refreshes — the default variant) must
//! select exactly what the naive full-scan argmax selects, across
//! seeds, thread counts, and every greedy-using algorithm core.
//!
//! Three substrates, three incremental strategies:
//! * RIS — per-node uncovered-RR-set counters (`incremental_counters`),
//!   reference = [`RisOracle::rescan_reference`];
//! * coverage — per-item uncovered-user counters
//!   (`incremental_counters`), reference =
//!   [`CoverageOracle::scan_reference`];
//! * facility — saturation-filtered active-user scans (`active_set`),
//!   reference = [`FacilityOracle::rescan_reference`].
//!
//! Oracle-call accounting must also agree: a counter read answers the
//! same `group_gains` contract as a rescan, so both sides of every pair
//! report identical `oracle_calls` on identical runs (the PR-2 batched
//! accounting rule, extended to the fast paths).

use std::sync::{Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;

use fair_submod::core::prelude::*;
use fair_submod::core::system::{SolutionState, UtilitySystem};
use fair_submod::coverage::CoverageOracle;
use fair_submod::datasets::{rand_fl, rand_mc, seeds};
use fair_submod::facility::FacilityOracle;
use fair_submod::influence::oracle::RisOracle;
use fair_submod::influence::DiffusionModel;

/// Serializes tests that touch the process-global rayon override (same
/// rationale as `tests/parallel_equivalence.rs`).
fn thread_override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Restores the auto thread count when a test exits (even by panic).
struct RestoreThreads;
impl Drop for RestoreThreads {
    fn drop(&mut self) {
        rayon::set_num_threads(0);
    }
}

/// Shared oracles for the proptest cases (built once; the RIS build in
/// particular is too expensive to repeat per generated case).
fn shared_coverage() -> &'static CoverageOracle {
    static ORACLE: OnceLock<CoverageOracle> = OnceLock::new();
    ORACLE.get_or_init(|| rand_mc(2, 120, seeds::RAND + 21).coverage_oracle())
}

fn shared_ris() -> &'static RisOracle {
    static ORACLE: OnceLock<RisOracle> = OnceLock::new();
    ORACLE.get_or_init(|| {
        rand_mc(2, 120, seeds::RAND + 22).ris_oracle(DiffusionModel::ic(0.1), 3_000, 17)
    })
}

fn shared_facility() -> &'static FacilityOracle {
    static ORACLE: OnceLock<FacilityOracle> = OnceLock::new();
    ORACLE.get_or_init(|| rand_fl(2, seeds::FL + 3).oracle())
}

/// Drives `fast` and `reference` through the same apply sequence,
/// asserting every per-item/per-group gain bit-identical at every
/// prefix (including the empty set) and after the full sequence.
fn assert_incremental_matches_reference<A, B>(fast: &A, reference: &B, applies: &[u32])
where
    A: UtilitySystem,
    B: UtilitySystem,
{
    assert_eq!(fast.num_items(), reference.num_items());
    let n = fast.num_items();
    let c = fast.num_groups();
    let mut fs = fast.init_inner();
    let mut rs = reference.init_inner();
    let mut fg = vec![0.0; c];
    let mut rg = vec![0.0; c];
    let check_all = |fs: &A::Inner, rs: &B::Inner, fg: &mut [f64], rg: &mut [f64], step: usize| {
        for v in 0..n as u32 {
            fast.group_gains(fs, v, fg);
            reference.group_gains(rs, v, rg);
            for g in 0..c {
                assert_eq!(
                    fg[g].to_bits(),
                    rg[g].to_bits(),
                    "gain diverged at step {step}, item {v}, group {g}: {} vs {}",
                    fg[g],
                    rg[g]
                );
            }
        }
    };
    check_all(&fs, &rs, &mut fg, &mut rg, 0);
    for (step, &v) in applies.iter().enumerate() {
        let v = v % n as u32;
        fast.apply(&mut fs, v);
        reference.apply(&mut rs, v);
        check_all(&fs, &rs, &mut fg, &mut rg, step + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn coverage_counters_match_scan_after_any_apply_sequence(
        applies in proptest::collection::vec(any::<u32>(), 0..12)
    ) {
        let oracle = shared_coverage();
        assert_incremental_matches_reference(oracle, &oracle.scan_reference(), &applies);
        // Transitivity double-check against the PR-2 Vec<bool> kernel.
        assert_incremental_matches_reference(oracle, &oracle.unpacked_reference(), &applies);
    }

    #[test]
    fn ris_counters_match_rescan_after_any_apply_sequence(
        applies in proptest::collection::vec(any::<u32>(), 0..12)
    ) {
        let oracle = shared_ris();
        assert_incremental_matches_reference(oracle, &oracle.rescan_reference(), &applies);
    }

    #[test]
    fn facility_active_set_matches_rescan_after_any_apply_sequence(
        applies in proptest::collection::vec(any::<u32>(), 0..12)
    ) {
        let oracle = shared_facility();
        assert_incremental_matches_reference(oracle, &oracle.rescan_reference(), &applies);
    }
}

/// Greedy over the fast kernel vs greedy over the rescan reference:
/// same items, same value bits, same oracle-call accounting — for both
/// variants, so the counter-read fast path counts exactly like the
/// rescan path it replaced.
fn assert_greedy_parity<A: UtilitySystem, B: UtilitySystem>(fast: &A, reference: &B, k: usize) {
    let f = MeanUtility::new(fast.num_users());
    for cfg in [GreedyConfig::naive(k), GreedyConfig::lazy(k)] {
        let a = greedy(fast, &f, &cfg);
        let b = greedy(reference, &f, &cfg);
        assert_eq!(a.items, b.items, "selection diverged ({cfg:?})");
        assert_eq!(
            a.value.to_bits(),
            b.value.to_bits(),
            "objective diverged ({cfg:?})"
        );
        assert_eq!(
            a.oracle_calls, b.oracle_calls,
            "fast-kernel call accounting diverged from rescan ({cfg:?})"
        );
    }
}

#[test]
fn greedy_runs_identically_on_fast_and_rescan_kernels() {
    let coverage = shared_coverage();
    assert_greedy_parity(coverage, &coverage.scan_reference(), 8);
    let ris = shared_ris();
    assert_greedy_parity(ris, &ris.rescan_reference(), 8);
    let facility = shared_facility();
    assert_greedy_parity(facility, &facility.rescan_reference(), 8);
}

/// CELF == naive across every greedy-using core, seeds, and thread
/// counts. Coverage instances have two groups so the BSM schemes run.
#[test]
fn lazy_default_matches_naive_across_cores_seeds_and_threads() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    for seed in [1u64, 2, 3] {
        let oracle = rand_mc(2, 150, seeds::RAND + 30 + seed).coverage_oracle();
        let f = MeanUtility::new(oracle.num_users());
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);

            // 1. Plain greedy.
            let lz = greedy(&oracle, &f, &GreedyConfig::lazy(6));
            let nv = greedy(&oracle, &f, &GreedyConfig::naive(6));
            assert_eq!(lz.items, nv.items, "greedy seed {seed} threads {threads}");
            assert_eq!(lz.value.to_bits(), nv.value.to_bits());
            assert!(
                lz.oracle_calls < nv.oracle_calls,
                "CELF must save calls: {} vs {} (seed {seed})",
                lz.oracle_calls,
                nv.oracle_calls
            );

            // 2. Saturate (bisection over greedy covers). Its probes
            // aggregate through `TruncatedMean`, whose real-valued
            // gains can near-tie within one ULP — the naive argmax's
            // `> best + 1e-15` slack keeps the earlier candidate while
            // the lazy heap's exact compare takes the true max (see
            // DESIGN.md §9), so item-for-item equality is not
            // guaranteed here. What both variants do guarantee is the
            // same bisection convergence: the returned coverage-level
            // estimates must agree to well under bisection precision.
            let mut sat_lazy = SaturateConfig::new(5).approximate_only();
            sat_lazy.variant = GreedyVariant::Lazy;
            let mut sat_naive = SaturateConfig::new(5).approximate_only();
            sat_naive.variant = GreedyVariant::Naive;
            let sl = saturate(&oracle, &sat_lazy);
            let sn = saturate(&oracle, &sat_naive);
            assert!(
                (sl.opt_g_estimate - sn.opt_g_estimate).abs() <= 1e-9,
                "saturate estimates diverged beyond near-tie noise: \
                 {} vs {} (seed {seed} threads {threads})",
                sl.opt_g_estimate,
                sn.opt_g_estimate
            );
            assert!(!sl.items.is_empty() && !sn.items.is_empty());

            // 3–4. The two BSM schemes.
            let mut bs_lazy = BsmSaturateConfig::new(5, 0.8);
            bs_lazy.variant = GreedyVariant::Lazy;
            let mut bs_naive = BsmSaturateConfig::new(5, 0.8);
            bs_naive.variant = GreedyVariant::Naive;
            let bl = bsm_saturate(&oracle, &bs_lazy);
            let bn = bsm_saturate(&oracle, &bs_naive);
            assert_eq!(
                bl.items, bn.items,
                "bsm_saturate seed {seed} threads {threads}"
            );
            assert_eq!(bl.eval.f.to_bits(), bn.eval.f.to_bits());
            assert_eq!(bl.eval.g.to_bits(), bn.eval.g.to_bits());
            assert_eq!(bl.fell_back, bn.fell_back);

            let mut ts_lazy = TsGreedyConfig::new(5, 0.8);
            ts_lazy.variant = GreedyVariant::Lazy;
            let mut ts_naive = TsGreedyConfig::new(5, 0.8);
            ts_naive.variant = GreedyVariant::Naive;
            let tl = bsm_tsgreedy(&oracle, &ts_lazy);
            let tn = bsm_tsgreedy(&oracle, &ts_naive);
            assert_eq!(
                tl.items, tn.items,
                "bsm_tsgreedy seed {seed} threads {threads}"
            );
            assert_eq!(tl.eval.f.to_bits(), tn.eval.f.to_bits());
            assert_eq!(tl.eval.g.to_bits(), tn.eval.g.to_bits());
            assert_eq!(tl.fell_back, tn.fell_back);
        }
    }
}

/// CELF == naive on the real-valued facility substrate (where gains are
/// `f64` sums, not integer counts) and on RIS.
#[test]
fn lazy_matches_naive_on_facility_and_ris() {
    let facility = shared_facility();
    let f = MeanUtility::new(facility.num_users());
    for k in [3usize, 8] {
        let lz = greedy(facility, &f, &GreedyConfig::lazy(k));
        let nv = greedy(facility, &f, &GreedyConfig::naive(k));
        assert_eq!(lz.items, nv.items, "facility k={k}");
        assert_eq!(lz.value.to_bits(), nv.value.to_bits());
    }
    let ris = shared_ris();
    let f = MeanUtility::new(ris.num_users());
    for k in [3usize, 8] {
        let lz = greedy(ris, &f, &GreedyConfig::lazy(k));
        let nv = greedy(ris, &f, &GreedyConfig::naive(k));
        assert_eq!(lz.items, nv.items, "ris k={k}");
        assert_eq!(lz.value.to_bits(), nv.value.to_bits());
    }
}

/// The default greedy variant is Lazy everywhere a config defaults.
#[test]
fn lazy_is_the_default_variant() {
    assert!(matches!(GreedyVariant::default(), GreedyVariant::Lazy));
    assert!(matches!(
        SaturateConfig::new(3).variant,
        GreedyVariant::Lazy
    ));
    assert!(matches!(
        BsmSaturateConfig::new(3, 0.5).variant,
        GreedyVariant::Lazy
    ));
    assert!(matches!(
        TsGreedyConfig::new(3, 0.5).variant,
        GreedyVariant::Lazy
    ));
    assert!(matches!(GreediConfig::new(3).variant, GreedyVariant::Lazy));
}

/// The registry stamps each substrate's kernel label into the report.
#[test]
fn reports_carry_the_gain_kernel_label() {
    let registry = SolverRegistry::default();
    let params = ScenarioParams::new(4, 0.8);
    let coverage = shared_coverage();
    let report = registry.solve("Greedy", coverage, &params).unwrap();
    assert_eq!(report.gain_kernel, "incremental_counters");
    let facility = shared_facility();
    let report = registry.solve("Greedy", facility, &params).unwrap();
    assert_eq!(report.gain_kernel, "active_set");
    // The rescan references keep the default label.
    let rescan = facility.rescan_reference();
    let report = registry.solve("Greedy", &rescan, &params).unwrap();
    assert_eq!(report.gain_kernel, "rescan");
}
