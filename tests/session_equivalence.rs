//! Session/one-shot equivalence suite (DESIGN.md §7): resumable
//! sessions must be a pure re-cutting of the algorithms at round
//! boundaries — never a different algorithm.
//!
//! Two invariants, enforced on every substrate:
//!
//! 1. **Run equivalence** — for every solver whose capabilities declare
//!    `resumable`, opening a session and stepping it to completion
//!    yields a report bit-identical (items, objective, f/g, oracle-call
//!    counts; everything except wall-clock `seconds`) to the one-shot
//!    `registry.solve` with the same parameters.
//! 2. **Prefix equivalence** — for prefix-exact sessions (the greedy
//!    family), `solution_at(k)` for *every* `k` of a sweep is
//!    bit-identical to a cold one-shot run at budget `k`. This is the
//!    invariant the bench harness's warm k-axis sweeps and the
//!    `grid_warm_vs_cold` benchmark rest on.
//!
//! CI re-runs this suite under `RAYON_NUM_THREADS=1`; the in-test
//! thread sweep covers the multi-worker configuration, so the prefix
//! property holds at any thread count.

use std::sync::{Mutex, MutexGuard, OnceLock};

use fair_submod::core::engine::{ScenarioParams, SessionStatus, SolveReport, SolverRegistry};
use fair_submod::core::metrics::evaluate;
use fair_submod::core::prelude::*;
use fair_submod::datasets::{rand_fl, rand_mc, seeds};
use fair_submod::influence::DiffusionModel;
use fair_submod_bench::harness::{run_suite, GridConfig};

/// Serializes tests that touch the process-global rayon override (same
/// rationale as `tests/parallel_equivalence.rs`).
fn thread_override_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct RestoreThreads;
impl Drop for RestoreThreads {
    fn drop(&mut self) {
        rayon::set_num_threads(0);
    }
}

fn strip_seconds(mut report: SolveReport) -> SolveReport {
    report.seconds = 0.0;
    report
}

/// For every resumable solver: session-to-completion == one-shot, and
/// for prefix-exact sessions every `k` of the sweep == a cold run.
fn check_sessions_on(system: &dyn DynUtilitySystem, label: &str) {
    let registry = SolverRegistry::default();
    let ks = [1usize, 2, 4, 6];
    let max_k = *ks.last().unwrap();
    let resumable: Vec<&str> = registry
        .names()
        .into_iter()
        .filter(|name| {
            registry
                .get(name)
                .is_some_and(|s| s.capabilities().resumable)
        })
        .collect();
    assert!(
        resumable.len() >= 6,
        "{label}: expected the greedy/Saturate/BSM family plus the scale \
         solvers (GreeDi, SieveStreaming) to be resumable, got {resumable:?}"
    );
    for name in resumable {
        let params = ScenarioParams::new(max_k, 0.6);
        // (1) Run equivalence at the session's own budget.
        let one_shot = strip_seconds(registry.solve(name, system, &params).unwrap());
        let mut session = registry.open_session(name, system, &params).unwrap();
        // The static capability (what grid planners group on) must
        // agree with the opened session's own answer.
        assert_eq!(
            session.prefix_exact(),
            registry.get(name).unwrap().capabilities().prefix_exact,
            "{label}/{name}: prefix_exact capability drifted from the session"
        );
        while session.step(system) == SessionStatus::Running {}
        assert!(session.done());
        let finished = session.finish(system).unwrap();
        assert_eq!(finished, one_shot, "{label}/{name}: session != one-shot");

        // (2) Prefix equivalence across the whole sweep.
        if session.prefix_exact() {
            for &k in &ks {
                let mut cold_params = params.clone();
                cold_params.k = k;
                let cold = strip_seconds(registry.solve(name, system, &cold_params).unwrap());
                let warm = session.solution_at(system, k).unwrap();
                assert_eq!(
                    warm, cold,
                    "{label}/{name}: prefix at k={k} differs from a cold run"
                );
            }
        } else {
            // Non-prefix sessions refuse other budgets instead of
            // silently answering them wrong.
            assert!(session.solution_at(system, max_k - 1).is_err(), "{name}");
            let own = session.solution_at(system, max_k).unwrap();
            assert_eq!(own, one_shot, "{label}/{name}");
        }
    }
}

#[test]
fn sessions_match_one_shot_runs_on_coverage() {
    let dataset = rand_mc(2, 120, seeds::RAND + 11);
    let oracle = dataset.coverage_oracle();
    check_sessions_on(&oracle, "coverage");
}

#[test]
fn sessions_match_one_shot_runs_on_facility() {
    let dataset = rand_fl(3, seeds::FL + 11);
    let oracle = dataset.oracle();
    check_sessions_on(&oracle, "facility");
}

#[test]
fn sessions_match_one_shot_runs_on_influence() {
    let dataset = rand_mc(2, 100, seeds::RAND + 12);
    let oracle = dataset.ris_oracle(DiffusionModel::ic(0.1), 2_000, 13);
    check_sessions_on(&oracle, "influence");
}

#[test]
fn greedy_prefixes_match_cold_runs_for_every_variant_and_thread_count() {
    let _serial = thread_override_lock();
    let _restore = RestoreThreads;
    let dataset = rand_mc(2, 200, seeds::RAND + 13);
    let oracle = dataset.coverage_oracle();
    let registry = SolverRegistry::default();
    let variants = [
        GreedyVariant::Naive,
        GreedyVariant::Lazy,
        GreedyVariant::Stochastic { sample_size: 25 },
    ];
    for threads in [1usize, 4] {
        rayon::set_num_threads(threads);
        for variant in &variants {
            let mut params = ScenarioParams::new(8, 0.5).with_seed(17);
            params.variant = variant.clone();
            let mut session = registry.open_session("Greedy", &oracle, &params).unwrap();
            assert!(session.prefix_exact());
            while session.step(&oracle) == SessionStatus::Running {}
            for k in 1..=8usize {
                let mut cold_params = params.clone();
                cold_params.k = k;
                let cold = strip_seconds(registry.solve("Greedy", &oracle, &cold_params).unwrap());
                let warm = session.solution_at(&oracle, k).unwrap();
                assert_eq!(warm, cold, "{variant:?} k={k} threads={threads}");
            }
        }
    }
}

/// The native GreeDi session works at shard granularity: one step per
/// shard (round 1), then one merge step — and the finished report is
/// bit-identical to the one-shot solver. Mid-run snapshots expose the
/// best shard found so far, which a serving layer can return early.
#[test]
fn greedi_sessions_step_one_shard_per_round() {
    let dataset = rand_mc(2, 150, seeds::RAND + 15);
    let oracle = dataset.coverage_oracle();
    let registry = SolverRegistry::default();
    let mut params = ScenarioParams::new(5, 0.5).with_seed(7);
    params.shards = 4;
    let one_shot = strip_seconds(registry.solve("GreeDi", &oracle, &params).unwrap());

    let mut session = registry.open_session("GreeDi", &oracle, &params).unwrap();
    assert!(!session.done());
    // Round 1: one step per shard, all still Running.
    for shard in 0..params.shards {
        assert_eq!(
            session.step(&oracle),
            SessionStatus::Running,
            "shard {shard} ended the session early"
        );
        let snap = session.snapshot();
        assert_eq!(snap.round, shard + 1);
        assert!(!snap.done);
        assert!(snap.items.len() <= params.k, "partial solution over budget");
        assert!(snap.objective >= 0.0 && snap.oracle_calls > 0);
    }
    // Asking for a solution before the merge is a typed refusal.
    assert!(session.solution_at(&oracle, params.k).is_err());
    // The merge step finishes it; further steps are no-ops.
    assert_eq!(session.step(&oracle), SessionStatus::Done);
    assert_eq!(session.rounds(), params.shards + 1);
    assert_eq!(session.step(&oracle), SessionStatus::Done);
    assert_eq!(
        session.rounds(),
        params.shards + 1,
        "post-done step counted"
    );
    let finished = strip_seconds(session.finish(&oracle).unwrap());
    assert_eq!(finished, one_shot, "GreeDi session != one-shot");
    assert_eq!(finished.notes.len(), 2, "shards + best_shard_value notes");
}

/// The native Sieve-Streaming session consumes one stream arrival per
/// step — exactly `n` steps — and finishes bit-identical to the
/// one-shot solver.
#[test]
fn sieve_sessions_step_one_arrival_per_item() {
    let dataset = rand_mc(2, 80, seeds::RAND + 16);
    let oracle = dataset.coverage_oracle();
    let n = oracle.dyn_num_items();
    let registry = SolverRegistry::default();
    let params = ScenarioParams::new(4, 0.5);
    let one_shot = strip_seconds(registry.solve("SieveStreaming", &oracle, &params).unwrap());

    let mut session = registry
        .open_session("SieveStreaming", &oracle, &params)
        .unwrap();
    let mut arrivals = 0usize;
    while session.step(&oracle) == SessionStatus::Running {
        arrivals += 1;
        let snap = session.snapshot();
        assert_eq!(snap.round, arrivals);
        assert!(snap.items.len() <= params.k, "sieve overflowed the budget");
    }
    arrivals += 1;
    assert_eq!(arrivals, n, "one step per stream arrival");
    assert_eq!(session.rounds(), n);
    let finished = strip_seconds(session.finish(&oracle).unwrap());
    assert_eq!(finished, one_shot, "Sieve session != one-shot");
}

/// The harness-level statement of the same invariant: a warm suite run
/// equals a cold suite run cell for cell (items, objective, f/g bits,
/// oracle calls) on every substrate the grid executor serves.
#[test]
fn warm_suite_equals_cold_suite_across_substrates() {
    let registry = SolverRegistry::default();
    let mut grid = GridConfig::paper(6, 0.7);
    grid.ks = vec![2, 4, 6];
    grid.repetitions = 2;

    let mc = rand_mc(2, 100, seeds::RAND + 14);
    let coverage = mc.coverage_oracle();
    let fl = rand_fl(2, seeds::FL + 14);
    let facility = fl.oracle();

    let check = |system: &dyn DynUtilitySystem, label: &str| {
        let evaluator = |items: &[ItemId]| evaluate(&ErasedSystem(system), items);
        let warm = run_suite(system, &evaluator, &registry, &grid).unwrap();
        let cold = run_suite(system, &evaluator, &registry, &grid.clone().cold()).unwrap();
        assert_eq!(warm.len(), cold.len(), "{label}");
        let mut warm_count = 0usize;
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(
                (w.solver.as_str(), w.k, w.rep),
                (c.solver.as_str(), c.k, c.rep)
            );
            match (&w.outcome, &c.outcome) {
                (Ok(wr), Ok(cr)) => {
                    assert_eq!(wr.items, cr.items, "{label} {} k={}", w.solver, w.k);
                    assert_eq!(wr.objective.to_bits(), cr.objective.to_bits());
                    assert_eq!(wr.f.to_bits(), cr.f.to_bits());
                    assert_eq!(wr.g.to_bits(), cr.g.to_bits());
                    assert_eq!(wr.oracle_calls, cr.oracle_calls);
                }
                (Err(we), Err(ce)) => assert_eq!(we, ce),
                (w, c) => panic!("{label}: warm {w:?} vs cold {c:?}"),
            }
            warm_count += usize::from(w.warm);
        }
        assert!(
            warm_count > 0,
            "{label}: no cell rode the warm path on a multi-k grid"
        );
    };
    check(&coverage, "coverage");
    check(&facility, "facility");
}
