//! Integration: local-search refinement stacked on top of the BSM
//! schemes — quantifying the optimality headroom the greedy schemes
//! leave, under the true fairness constraint.

use fair_submod::core::aggregate::{MeanUtility, MinGroupUtility};
use fair_submod::core::metrics::evaluate;
use fair_submod::core::prelude::*;
use fair_submod::core::system::SolutionState;
use fair_submod::datasets::{rand_fl, rand_mc, seeds};

fn refine_under_fairness<S: fair_submod::core::system::UtilitySystem>(
    system: &S,
    start: &[u32],
    floor: f64,
) -> (Vec<u32>, f64, f64) {
    let f = MeanUtility::new(system.num_users());
    let g = MinGroupUtility::new(system.group_sizes());
    let constraint = |items: &[u32]| {
        let mut st = SolutionState::new(system);
        st.insert_all(items);
        st.value(&g) + 1e-9 >= floor
    };
    let out = local_search_refine(system, &f, start, &constraint, &Default::default());
    (out.items, out.initial_value, out.value)
}

#[test]
fn refinement_never_hurts_tsgreedy_on_mc() {
    let dataset = rand_mc(2, 500, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    for tau in [0.4, 0.8] {
        let ts = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(5, tau));
        let floor = tau * ts.opt_g_estimate;
        let (items, before, after) = refine_under_fairness(&oracle, &ts.items, floor);
        assert!(after + 1e-12 >= before, "tau {tau}");
        let eval = evaluate(&oracle, &items);
        assert!(eval.g + 1e-9 >= floor, "tau {tau}: constraint broken");
    }
}

#[test]
fn refinement_closes_part_of_the_gap_to_optimal() {
    // On the exact-solvable RAND-OPT size, refinement of TSGreedy must
    // land between TSGreedy and BSM-Optimal.
    let dataset = rand_mc(2, 150, seeds::RAND);
    let oracle = dataset.coverage_oracle();
    let tau = 0.8;
    let opt = branch_and_bound_bsm(&oracle, &ExactConfig::new(5, tau));
    assert!(opt.complete);
    let ts = bsm_tsgreedy(&oracle, &TsGreedyConfig::new(5, tau));
    let floor = tau * opt.opt_g;
    let (_, _, refined) = refine_under_fairness(&oracle, &ts.items, floor);
    assert!(refined <= opt.eval.f + 1e-9, "refinement beat the optimum");
    assert!(refined + 1e-9 >= ts.eval.f, "refinement lost value");
}

#[test]
fn refinement_on_fl_respects_constraint() {
    let dataset = rand_fl(2, seeds::FL);
    let oracle = dataset.oracle();
    let bs = bsm_saturate(&oracle, &BsmSaturateConfig::new(5, 0.8));
    let floor = 0.8 * bs.opt_g_estimate * (1.0 - 2.0 * 0.05); // Lemma 4.4 floor
    let (items, _, after) = refine_under_fairness(&oracle, &bs.items, floor);
    let eval = evaluate(&oracle, &items);
    assert!(eval.g + 1e-9 >= floor);
    assert!((eval.f - after).abs() < 1e-9);
}
